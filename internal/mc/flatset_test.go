package mc

import (
	"errors"
	"fmt"
	"testing"
)

// collisionState builds an encoding for id whose hash lands in shard 0:
// every state of the adversarial model probes the same flat table, so
// shard-level concurrency, probe chains and index growth are all
// exercised under maximum contention. The nonce search is cheap (the
// shard index is 6 bits, so ~64 tries).
func collisionState(id int) State {
	for nonce := 0; ; nonce++ {
		enc := fmt.Sprintf("c%05d/%d", id, nonce)
		if hashBytes([]byte(enc))&(numShards-1) == 0 {
			return State(enc)
		}
	}
}

// collisionModel is a binary tree of n single-shard-hashing states:
// node i steps to 2i+1 and 2i+2. With n in the thousands, shard 0's
// probe index must grow several times mid-search while the other 63
// shards stay at their initial size.
type collisionModel struct{ n int }

func (m collisionModel) id(s State) int {
	var id, nonce int
	fmt.Sscanf(string(s), "c%05d/%d", &id, &nonce)
	return id
}

func (m collisionModel) Initial() []State { return []State{collisionState(0)} }

func (m collisionModel) Successors(s State) []State {
	i := m.id(s)
	var out []State
	for _, c := range []int{2*i + 1, 2*i + 2} {
		if c < m.n {
			out = append(out, collisionState(c))
		}
	}
	return out
}

// TestFlatSetSingleShardAdversary pits the engine against the oracle on
// the all-states-one-shard model: verdicts, counts, depths and the full
// counterexample trace (which threads parent refs through a table that
// grew repeatedly after those parents were claimed) must be identical at
// workers 1, 2 and 8.
func TestFlatSetSingleShardAdversary(t *testing.T) {
	m := collisionModel{n: 3000}
	t.Run("holds", func(t *testing.T) {
		compareWithOracle(t, m, func(from, to State) bool { return true }, nil)
	})
	t.Run("transition-violation", func(t *testing.T) {
		// Deep in the tree: the trace walks parent refs claimed before
		// several index growths.
		bad := collisionState(2897)
		compareWithOracle(t, m, func(from, to State) bool { return to != bad }, nil)
	})
	t.Run("state-violation", func(t *testing.T) {
		bad := collisionState(1553)
		compareWithOracle(t, m, nil, func(s State) bool { return s != bad })
	})
}

// TestFlatSetGrowthUnderCollisions drives thousands of colliding claims
// into one shard directly: the index must grow (several doublings past
// its 32-cell start), every earlier ref must survive the growths
// bytewise, and the load factor must stay below the 3/4 growth
// threshold.
func TestFlatSetGrowthUnderCollisions(t *testing.T) {
	const n = 3000
	v := newVisitedSet(n + 1)
	var pc probeCounter
	encs := make([][]byte, n)
	refs := make([]uint32, n)
	for i := range encs {
		encs[i] = []byte(collisionState(i))
		h := hashBytes(encs[i])
		if h&(numShards-1) != 0 {
			t.Fatalf("fixture broken: state %d hashes to shard %d", i, h&(numShards-1))
		}
		st, ref := v.claim(encs[i], h, 0, uint64(i), false, 0, &pc)
		if st != claimNew {
			t.Fatalf("claim %d = %d, want claimNew", i, st)
		}
		refs[i] = ref
	}
	sh := &v.shards[0]
	cells := len(*sh.index.Load())
	if cells <= initialIndexCells {
		t.Errorf("shard 0 index still %d cells after %d colliding claims", cells, n)
	}
	if got := int(v.shards[0].ordCount); got != n {
		t.Errorf("shard 0 holds %d entries, want %d", got, n)
	}
	if lf := v.loadFactor(); lf <= 0 || lf > 0.75 {
		t.Errorf("load factor %.2f outside (0, 0.75]", lf)
	}
	// Every pre-growth ref must still resolve to its original bytes, and
	// find must agree.
	for i := range encs {
		if got := string(v.bytesOf(refs[i])); got != string(encs[i]) {
			t.Fatalf("ref %d reads %q after growth, want %q", i, got, encs[i])
		}
		ref, ok := v.find(encs[i], hashBytes(encs[i]))
		if !ok || ref != refs[i] {
			t.Fatalf("find(%q) = (%d, %v), want (%d, true)", encs[i], ref, ok, refs[i])
		}
	}
	// The untouched shards must still be at their initial size.
	if got := len(*v.shards[1].index.Load()); got != initialIndexCells {
		t.Errorf("shard 1 index grew to %d cells with no entries", got)
	}
	// Long probe chains must have been observed.
	total := uint64(0)
	for _, c := range pc.hist {
		total += c
	}
	if total == 0 || pc.hist[0] == total {
		t.Errorf("probe histogram %v records no chains under full collision", pc.hist)
	}
}

// TestMemBudgetDeterministic: a budget between the set's initial
// footprint and the search's peak trips mid-run at a level boundary, so
// the partial result — error, states, transitions, depth — must be
// identical for every worker count, and a generous budget must change
// nothing at all.
func TestMemBudgetDeterministic(t *testing.T) {
	m := collisionModel{n: 3000}
	inv := func(from, to State) bool { return true }

	// Discover the run's peak footprint, then budget halfway up.
	var full Stats
	if _, err := CheckTransitionInvariant(m, inv, Options{Stats: func(s Stats) { full = s }}); err != nil {
		t.Fatal(err)
	}
	if full.PeakResidentBytes <= 0 || full.ResidentBytes <= 0 {
		t.Fatalf("stats report no resident bytes: %+v", full)
	}
	budget := full.PeakResidentBytes * 3 / 4

	type outcome struct {
		errIsLimit bool
		states     int
		trans      int
		depth      int
	}
	var want outcome
	for i, w := range workerCounts {
		res, err := CheckTransitionInvariant(m, inv, Options{Workers: w, MemBudget: budget})
		if !errors.Is(err, ErrStateLimit) {
			t.Fatalf("workers=%d: err = %v, want ErrStateLimit", w, err)
		}
		got := outcome{true, res.StatesExplored, res.TransitionsExplored, res.Depth}
		if i == 0 {
			want = got
			if got.states >= 3000 {
				t.Fatalf("budget %d did not cut the search (states=%d)", budget, got.states)
			}
			continue
		}
		if got != want {
			t.Errorf("workers=%d: partial result %+v differs from serial %+v", w, got, want)
		}
	}

	// With fallback walks the same exhaustion degrades to an explicit
	// inconclusive verdict instead of an error.
	res, err := CheckTransitionInvariant(m, inv,
		Options{MemBudget: budget, FallbackWalks: 4, FallbackDepth: 32, FallbackSeed: 1})
	if err != nil {
		t.Fatalf("fallback under memory budget must degrade, not fail: %v", err)
	}
	if !res.Inconclusive || !res.Holds {
		t.Fatalf("want inconclusive holds, got %+v", res)
	}

	// A budget above the peak must not perturb the verdict.
	res, err = CheckTransitionInvariant(m, inv, Options{MemBudget: full.PeakResidentBytes * 2})
	if err != nil || !res.Holds || res.StatesExplored != 3000 {
		t.Fatalf("generous budget perturbed the run: res=%+v err=%v", res, err)
	}
}

// TestStatsVisitedSetFields: the new Stats fields are populated and
// internally consistent on an ordinary run.
func TestStatsVisitedSetFields(t *testing.T) {
	var st Stats
	res, err := CheckTransitionInvariant(diamondModel{k: 24},
		func(from, to State) bool { return true },
		Options{Stats: func(s Stats) { st = s }})
	if err != nil || !res.Holds {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if st.LoadFactor <= 0 || st.LoadFactor > 0.75 {
		t.Errorf("load factor %.3f outside (0, 0.75]", st.LoadFactor)
	}
	if st.ResidentBytes <= 0 || st.PeakResidentBytes < st.ResidentBytes {
		t.Errorf("resident %d / peak %d inconsistent", st.ResidentBytes, st.PeakResidentBytes)
	}
	probes := uint64(0)
	for _, c := range st.ProbeHist {
		probes += c
	}
	if probes == 0 {
		t.Error("probe histogram empty after a full search")
	}
}
