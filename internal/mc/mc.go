// Package mc is a small explicit-state model checker. It plays the role SMV
// plays in the paper: given a finite-state model (initial states plus a
// successor relation), it explores the reachable state space breadth-first,
// checks invariants, and reconstructs shortest counterexample traces.
//
// The paper's correctness criterion (§5.1) is a *transition* invariant —
// "a node in active or passive never moves to freeze" — so the checker
// verifies predicates over (from, to) state pairs as well as plain state
// invariants.
//
// Exploration is level-synchronous and parallel (see engine.go): each BFS
// generation is partitioned across Options.Workers goroutines over a
// sharded visited set, and per-level outcomes are reduced deterministically
// so verdicts, counts and counterexamples are byte-identical for any
// worker count.
package mc

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"
)

// State is an opaque, canonical encoding of one model state. Equal states
// must encode to equal strings.
type State string

// Model is a finite-state transition system.
type Model interface {
	// Initial returns the initial states.
	Initial() []State
	// Successors returns every state reachable from s in one transition.
	// It must be safe for concurrent calls on distinct states.
	Successors(s State) []State
}

// Expander is a per-worker successor generator with reusable scratch:
// Successors returns the packed encodings of enc's successors. The
// returned slice and the byte slices it holds are owned by the Expander
// and are valid only until the next call — callers must copy what they
// keep. Implementations need not be safe for concurrent use; the engine
// gives every exploration worker its own Expander.
type Expander interface {
	Successors(enc []byte) [][]byte
}

// ExpanderModel is an optional Model extension for models whose successor
// generation runs allocation-free against per-worker scratch. When a
// Model implements it, the engine expands frontiers through NewExpander
// instances instead of Successors; results are identical, only
// allocation behaviour changes.
type ExpanderModel interface {
	Model
	NewExpander() Expander
}

// CanonicalExpander is an Expander that can additionally rewrite an
// encoding in place to the canonical representative of its reduction
// equivalence class. Canonicalize must be idempotent and
// length-preserving, and — like Successors — may use the Expander's
// scratch, so it must not be called while a previous Successors result
// is still being read from another worker's buffers it aliases.
type CanonicalExpander interface {
	Expander
	Canonicalize(enc []byte)
}

// ReducibleModel is an optional ExpanderModel extension for models that
// define a sound state-space reduction: exploring only canonical
// representatives preserves transition-invariant verdicts for
// class-invariant predicates (ones that agree on every member of an
// equivalence class, such as the per-role §5.1 property).
//
// The engine applies the reduction only when checking a transition
// invariant with no state invariant (state invariants are evaluated per
// state, and a representative says nothing about the class members it
// shadows), only when Reducible reports the current configuration admits
// it, and never when Options.NoReduce asks for the oracle semantics.
type ReducibleModel interface {
	ExpanderModel
	// Reducible reports whether the reduction is sound for the model's
	// current configuration.
	Reducible() bool
	// NewReducedExpander returns a per-worker expander whose successor
	// filtering may work modulo the reduction, paired with the
	// canonicalizer the engine applies before claiming each successor.
	NewReducedExpander() CanonicalExpander
}

// FingerprintedModel is optionally implemented by models that can digest
// their configuration into a stable identity. The engine stamps the
// fingerprint into every checkpoint it writes and refuses to resume a
// checkpoint whose fingerprint differs from the current model's — the
// snapshot's packed encodings would otherwise silently decode as garbage.
// A fingerprint must be nonzero; zero is the "unknown" sentinel carried
// by models without one and by pre-v4 checkpoint files, and disables the
// check (best-effort compatibility).
type FingerprintedModel interface {
	// Fingerprint digests everything that determines the state encoding
	// and the transition relation.
	Fingerprint() uint64
}

// TransitionInvariant is a predicate over a transition; the checker
// searches for a reachable transition where it is false.
type TransitionInvariant func(from, to State) bool

// StateInvariant is a predicate over single states.
type StateInvariant func(s State) bool

// TransitionInvariantBytes is a TransitionInvariant over raw encodings.
// The engine evaluates it once per generated transition without
// materializing State strings, so implementations that probe the packed
// encoding directly keep the hot path allocation-free. The slices are
// scratch — valid only for the duration of the call.
type TransitionInvariantBytes func(from, to []byte) bool

// StateInvariantBytes is a StateInvariant over raw encodings; the same
// scratch rules as TransitionInvariantBytes apply.
type StateInvariantBytes func(enc []byte) bool

// Progress is a per-level observability snapshot handed to
// Options.Progress after each completed BFS generation.
type Progress struct {
	// Depth is the depth of the frontier just produced.
	Depth int
	// States is the number of distinct states visited so far.
	States int
	// Transitions is the number of transitions examined so far.
	Transitions int
	// Frontier is the size of the next frontier.
	Frontier int
}

// Options bound the exploration.
type Options struct {
	// MaxStates aborts the search once this many distinct states
	// (including the initial ones) have been admitted (0 = default of
	// 20 million). The budget is checked before insertion, so at most
	// MaxStates states are ever held.
	MaxStates int
	// MemBudget caps the visited set's resident memory in bytes (0 =
	// unlimited): entry slabs, probe indexes and the overflow intern
	// table, tracked exactly by the flat set's own accounting. The
	// budget is checked at level boundaries — where the footprint is a
	// deterministic function of the admitted state set, so a trip is
	// identical for any worker count — and trips the same degradation
	// path as MaxStates: ErrStateLimit, or FallbackWalks sampling when
	// configured.
	MemBudget int64
	// MaxDepth limits the BFS depth (0 = unbounded). With a depth limit
	// the verdict "holds" only covers traces up to that length.
	MaxDepth int
	// Workers is the number of goroutines that expand each BFS frontier
	// (0 = one per CPU). The verdict, StatesExplored,
	// TransitionsExplored, Depth and the counterexample are
	// byte-identical for any value; only wall-clock time changes.
	Workers int
	// Progress, when non-nil, is invoked after every completed BFS
	// level. It is called from the coordinating goroutine, never
	// concurrently.
	Progress func(Progress)
	// Context cancels the search cooperatively at BFS-generation
	// granularity (nil = never). A cancelled search returns the partial
	// Result accumulated so far with Interrupted set, wrapped in
	// ErrInterrupted — or ErrDeadline when the context's deadline
	// expired.
	Context context.Context
	// CheckpointPath, when non-empty, is where the engine writes a
	// resumable snapshot of the search: always when the context
	// interrupts it, and additionally every CheckpointEvery completed
	// levels. The file is removed again when the search ends with a
	// definite verdict, so a stale snapshot can never shadow a finished
	// run; an Inconclusive degraded verdict keeps it, so the search can
	// be resumed with a larger budget.
	CheckpointPath string
	// CheckpointEvery is the number of completed BFS levels between
	// periodic snapshots (0 = only on interrupt).
	CheckpointEvery int
	// ResumePath, when non-empty, restores the search from the
	// checkpoint at this path before exploring. A missing file is not an
	// error — the search simply starts fresh — so interrupt/resume loops
	// need no existence checks.
	ResumePath string
	// Resume restores the search from an in-memory checkpoint; it takes
	// precedence over ResumePath. A resumed search is byte-identical —
	// verdict, StatesExplored, TransitionsExplored, Depth and
	// counterexample — to the uninterrupted run it was split from.
	Resume *Checkpoint
	// FallbackWalks > 0 degrades an exhausted MaxStates budget into a
	// bounded random-walk sampling pass instead of an ErrStateLimit
	// failure: FallbackWalks seeded walks of at most FallbackDepth steps
	// search for a violation beyond the explored region. A found
	// violation is a genuine FAILS (the trace is real, though not
	// necessarily shortest); otherwise the Result is marked
	// Inconclusive.
	FallbackWalks int
	// FallbackDepth bounds each fallback walk (0 = 1024 steps).
	FallbackDepth int
	// FallbackSeed seeds the fallback walker's RNG stream.
	FallbackSeed uint64
	// NoReduce disables the state-space reduction for ReducibleModel
	// models — the oracle mode: every concrete state is explored, counts
	// and depths match the published enumeration exactly. It has no
	// effect on models without a reduction.
	NoReduce bool
	// NoSeal disables the sealed visited-set tier — the oracle mode for
	// the two-tier memory layout: every admitted state stays in a live
	// 32-byte slot forever, as before PR 10. Results are byte-identical
	// either way; only the resident footprint (and checkpoint format —
	// an unsealed search writes v4 snapshots) changes.
	NoSeal bool
	// Stats, when non-nil, receives a summary of the completed search —
	// throughput, allocation churn, peak frontier — from the coordinating
	// goroutine, after the Result is final. It is observability only:
	// enabling it never changes the Result.
	Stats func(Stats)
	// Dist, when non-nil, delegates the whole search to a distributed
	// backend (internal/dist) instead of the in-process engine. The
	// backend receives these Options with Dist cleared and must honor
	// the same determinism contract: verdicts, counts and
	// counterexamples byte-identical to the in-process engine's.
	Dist DistChecker
}

// DistChecker is the hook a distributed exploration backend plugs into
// Options.Dist. Keeping it an interface here (rather than importing the
// backend) leaves mc dependency-free: internal/dist imports mc, never
// the reverse.
type DistChecker interface {
	DistCheck(m Model, stInv StateInvariantBytes, trInv TransitionInvariantBytes, opts Options) (Result, error)
}

// Stats is the per-search observability summary handed to Options.Stats.
type Stats struct {
	// States and Transitions mirror the Result counters.
	States      int
	Transitions int
	// Levels is the number of completed BFS generations.
	Levels int
	// PeakFrontier is the largest frontier produced by any level.
	PeakFrontier int
	// Duration is the wall-clock search time.
	Duration time.Duration
	// StatesPerSec is States/Duration.
	StatesPerSec float64
	// Allocs and AllocBytes are the process-wide heap allocation deltas
	// across the search — a whole-process measure, exact only when
	// nothing else runs. Both derive from runtime.MemStats' monotonic
	// counters (Mallocs, TotalAlloc), never from HeapAlloc, so the
	// deltas cannot go negative when the GC runs mid-search.
	Allocs     uint64
	AllocBytes uint64
	// WireFrames and WireBytes total the protocol frames and bytes a
	// distributed backend put on the wire (control plus data plane);
	// both are zero for the in-process engine.
	WireFrames uint64
	WireBytes  uint64
	// LoadFactor is the visited set's final occupancy: admitted states
	// over total probe-index cells.
	LoadFactor float64
	// ProbeHist is the claim probe-length histogram: ProbeHist[i] counts
	// claims resolved in i+1 probe steps, with the last bucket holding
	// everything at probeBuckets steps or more.
	ProbeHist [8]uint64
	// ResidentBytes is the visited set's exact resident footprint at
	// search end (live entry slabs + probe indexes + interned overflow +
	// the sealed tier + seal scratch); PeakResidentBytes is its
	// high-water mark, including the transients where an old and a grown
	// probe index are briefly both live. This is the number
	// Options.MemBudget is enforced against. The one deliberate
	// approximation: sealed arena slack capacity (bounded at ~25% by its
	// growth policy) is not counted — the counter tracks bytes in use,
	// which is also what survives a checkpoint round trip unchanged.
	ResidentBytes     int64
	PeakResidentBytes int64
	// SealedStates is the number of visited states migrated into the
	// sealed tier (all states of levels that finished expanding, unless
	// Options.NoSeal). SealedArenaBytes is their delta-compressed
	// encoding arena (blob + restart offsets); SealedIndexBytes the
	// quotiented probe index over them. Live states are
	// States − SealedStates.
	SealedStates     int64
	SealedArenaBytes int64
	SealedIndexBytes int64
	// CheckpointRetries counts transient periodic-snapshot write
	// failures that a bounded-backoff retry absorbed.
	// CheckpointWriteErr is the final error of a periodic snapshot that
	// failed every attempt ("" when none did): the search continues
	// without that snapshot — an exhausted disk should not kill an
	// hours-long exploration — so the miss is surfaced here instead of
	// being dropped silently.
	CheckpointRetries  int
	CheckpointWriteErr string
}

// defaultMaxStates is the state budget applied when Options.MaxStates
// is zero.
const defaultMaxStates = 20_000_000

func (o Options) withDefaults() Options {
	if o.MaxStates == 0 {
		o.MaxStates = defaultMaxStates
	}
	if o.Workers < 1 {
		o.Workers = runtime.NumCPU()
	}
	if o.FallbackWalks > 0 && o.FallbackDepth == 0 {
		o.FallbackDepth = 1024
	}
	return o
}

// ErrStateLimit reports that the state budget was exhausted before the
// search completed.
var ErrStateLimit = errors.New("mc: state limit exceeded")

// ErrInterrupted reports that Options.Context was cancelled before the
// search completed; the returned Result holds everything explored so far
// and a checkpoint was written if Options.CheckpointPath is set.
var ErrInterrupted = errors.New("mc: search interrupted")

// ErrDeadline is the ErrInterrupted variant for a context whose deadline
// expired.
var ErrDeadline = errors.New("mc: search deadline exceeded")

// Result is the outcome of a check.
type Result struct {
	// Holds is true when no reachable violation exists (within MaxDepth,
	// if one was set).
	Holds bool
	// StatesExplored is the number of distinct states visited.
	StatesExplored int
	// TransitionsExplored is the number of transitions examined.
	TransitionsExplored int
	// Depth is the height of the explored BFS tree.
	Depth int
	// DepthBounded is set when MaxDepth cut the search off.
	DepthBounded bool
	// Interrupted is set when Options.Context cancelled the search: the
	// counts above cover only the levels completed before the cut.
	Interrupted bool
	// Inconclusive is set when the state budget ran out and the fallback
	// sampling pass found no violation: Holds then covers only the
	// explored and sampled portion of the state space.
	Inconclusive bool
	// SampledWalks and SampledDepth record the fallback sampling
	// coverage (zero unless the fallback ran).
	SampledWalks int
	SampledDepth int
	// Reduced is set when the search explored the model's reduction
	// quotient instead of the concrete space: StatesExplored,
	// TransitionsExplored and Depth then count canonical representatives.
	// The verdict is the same either way, and a counterexample is always
	// a concrete trace (decanonicalized when found in the quotient).
	Reduced bool
	// Counterexample is a shortest path of states from an initial state to
	// the violation (inclusive); empty when Holds. A counterexample found
	// by the fallback sampler is genuine but not necessarily shortest — as
	// is a decanonicalized one from a Reduced search.
	Counterexample []State
}

// String summarizes the result.
func (r Result) String() string {
	verdict := "HOLDS"
	switch {
	case !r.Holds:
		verdict = fmt.Sprintf("FAILS (counterexample length %d)", len(r.Counterexample))
	case r.Interrupted:
		verdict = fmt.Sprintf("INTERRUPTED (partial, depth %d)", r.Depth)
	case r.Inconclusive:
		verdict = fmt.Sprintf("INCONCLUSIVE (budget exhausted; %d walks ≤%d steps found no violation)",
			r.SampledWalks, r.SampledDepth)
	case r.DepthBounded:
		verdict = fmt.Sprintf("HOLDS (up to depth %d)", r.Depth)
	}
	return fmt.Sprintf("%s — %d states, %d transitions explored", verdict, r.StatesExplored, r.TransitionsExplored)
}

// CheckTransitionInvariant explores the reachable state space breadth-first
// and reports whether inv holds on every reachable transition. Because the
// search is breadth-first, a returned counterexample is of minimal length,
// like SMV's shortest error traces.
func CheckTransitionInvariant(m Model, inv TransitionInvariant, opts Options) (Result, error) {
	return check(m, nil, wrapTransitionInvariant(inv), opts)
}

// CheckInvariant explores the reachable state space and reports whether inv
// holds in every reachable state.
func CheckInvariant(m Model, inv StateInvariant, opts Options) (Result, error) {
	return check(m, wrapStateInvariant(inv), nil, opts)
}

// CheckTransitionInvariantBytes is CheckTransitionInvariant for an
// invariant over raw encodings — the allocation-free form of the hot
// path. Results are identical to the string form for equivalent
// predicates.
func CheckTransitionInvariantBytes(m Model, inv TransitionInvariantBytes, opts Options) (Result, error) {
	return check(m, nil, inv, opts)
}

// CheckInvariantBytes is CheckInvariant for an invariant over raw
// encodings.
func CheckInvariantBytes(m Model, inv StateInvariantBytes, opts Options) (Result, error) {
	return check(m, inv, nil, opts)
}

// wrapTransitionInvariant adapts a string-form invariant to the engine's
// byte-oriented hot path. The State conversions allocate; callers that
// care use the Bytes entry points directly.
func wrapTransitionInvariant(inv TransitionInvariant) TransitionInvariantBytes {
	if inv == nil {
		return nil
	}
	return func(from, to []byte) bool { return inv(State(from), State(to)) }
}

func wrapStateInvariant(inv StateInvariant) StateInvariantBytes {
	if inv == nil {
		return nil
	}
	return func(enc []byte) bool { return inv(State(enc)) }
}

// RandomWalker explores by seeded random simulation — a cheap falsification
// pass for models too large to exhaust.
type RandomWalker struct {
	// NextChoice returns a value in [0, n); a seeded RNG in practice.
	// It is only consulted for n >= 2 — the walker resolves empty and
	// singleton choice sets itself, so implementations never see n < 2.
	NextChoice func(n int) int
}

// choose picks an index in [0, len) without consulting NextChoice for
// degenerate choice sets: singleton sets (the common single-initial-state
// model) take the only element without burning a random draw, and empty
// sets can never reach a NextChoice(0) panic.
func (w RandomWalker) choose(n int) int {
	if n <= 1 {
		return 0
	}
	return w.NextChoice(n)
}

// Walk runs walks random walks of at most depth steps each, returning the
// first violating trace found, or nil.
func (w RandomWalker) Walk(m Model, inv TransitionInvariant, walks, depth int) []State {
	inits := m.Initial()
	if len(inits) == 0 {
		return nil
	}
	for i := 0; i < walks; i++ {
		s := inits[w.choose(len(inits))]
		trace := []State{s}
		for d := 0; d < depth; d++ {
			succs := m.Successors(s)
			if len(succs) == 0 {
				break
			}
			next := succs[w.choose(len(succs))]
			trace = append(trace, next)
			if !inv(s, next) {
				return trace
			}
			s = next
		}
	}
	return nil
}

// WalkState runs walks random walks of at most depth steps each against a
// state invariant, returning the first violating trace found, or nil.
// Unlike Walk's transition predicate, the invariant is also checked on the
// drawn initial state itself, so a violating initial state yields a
// one-state trace instead of going unnoticed.
func (w RandomWalker) WalkState(m Model, inv StateInvariant, walks, depth int) []State {
	inits := m.Initial()
	if len(inits) == 0 {
		return nil
	}
	for i := 0; i < walks; i++ {
		s := inits[w.choose(len(inits))]
		trace := []State{s}
		if !inv(s) {
			return trace
		}
		for d := 0; d < depth; d++ {
			succs := m.Successors(s)
			if len(succs) == 0 {
				break
			}
			next := succs[w.choose(len(succs))]
			trace = append(trace, next)
			if !inv(next) {
				return trace
			}
			s = next
		}
	}
	return nil
}
