// Package mc is a small explicit-state model checker. It plays the role SMV
// plays in the paper: given a finite-state model (initial states plus a
// successor relation), it explores the reachable state space breadth-first,
// checks invariants, and reconstructs shortest counterexample traces.
//
// The paper's correctness criterion (§5.1) is a *transition* invariant —
// "a node in active or passive never moves to freeze" — so the checker
// verifies predicates over (from, to) state pairs as well as plain state
// invariants.
package mc

import (
	"errors"
	"fmt"
)

// State is an opaque, canonical encoding of one model state. Equal states
// must encode to equal strings.
type State string

// Model is a finite-state transition system.
type Model interface {
	// Initial returns the initial states.
	Initial() []State
	// Successors returns every state reachable from s in one transition.
	Successors(s State) []State
}

// TransitionInvariant is a predicate over a transition; the checker
// searches for a reachable transition where it is false.
type TransitionInvariant func(from, to State) bool

// StateInvariant is a predicate over single states.
type StateInvariant func(s State) bool

// Options bound the exploration.
type Options struct {
	// MaxStates aborts the search after visiting this many states
	// (0 = default of 20 million).
	MaxStates int
	// MaxDepth limits the BFS depth (0 = unbounded). With a depth limit
	// the verdict "holds" only covers traces up to that length.
	MaxDepth int
}

func (o Options) withDefaults() Options {
	if o.MaxStates == 0 {
		o.MaxStates = 20_000_000
	}
	return o
}

// ErrStateLimit reports that the state budget was exhausted before the
// search completed.
var ErrStateLimit = errors.New("mc: state limit exceeded")

// Result is the outcome of a check.
type Result struct {
	// Holds is true when no reachable violation exists (within MaxDepth,
	// if one was set).
	Holds bool
	// StatesExplored is the number of distinct states visited.
	StatesExplored int
	// TransitionsExplored is the number of transitions examined.
	TransitionsExplored int
	// Depth is the height of the explored BFS tree.
	Depth int
	// DepthBounded is set when MaxDepth cut the search off.
	DepthBounded bool
	// Counterexample is a shortest path of states from an initial state to
	// the violation (inclusive); empty when Holds.
	Counterexample []State
}

// String summarizes the result.
func (r Result) String() string {
	verdict := "HOLDS"
	if !r.Holds {
		verdict = fmt.Sprintf("FAILS (counterexample length %d)", len(r.Counterexample))
	} else if r.DepthBounded {
		verdict = fmt.Sprintf("HOLDS (up to depth %d)", r.Depth)
	}
	return fmt.Sprintf("%s — %d states, %d transitions explored", verdict, r.StatesExplored, r.TransitionsExplored)
}

type bfsNode struct {
	parent State
	depth  int
}

// CheckTransitionInvariant explores the reachable state space breadth-first
// and reports whether inv holds on every reachable transition. Because the
// search is breadth-first, a returned counterexample is of minimal length,
// like SMV's shortest error traces.
func CheckTransitionInvariant(m Model, inv TransitionInvariant, opts Options) (Result, error) {
	return check(m, nil, inv, opts)
}

// CheckInvariant explores the reachable state space and reports whether inv
// holds in every reachable state.
func CheckInvariant(m Model, inv StateInvariant, opts Options) (Result, error) {
	return check(m, inv, nil, opts)
}

func check(m Model, stInv StateInvariant, trInv TransitionInvariant, opts Options) (Result, error) {
	opts = opts.withDefaults()
	visited := make(map[State]bfsNode)
	var frontier []State
	res := Result{Holds: true}

	for _, s := range m.Initial() {
		if _, seen := visited[s]; seen {
			continue
		}
		visited[s] = bfsNode{}
		if stInv != nil && !stInv(s) {
			res.Holds = false
			res.Counterexample = []State{s}
			res.StatesExplored = len(visited)
			return res, nil
		}
		frontier = append(frontier, s)
	}

	for len(frontier) > 0 {
		var next []State
		for _, s := range frontier {
			depth := visited[s].depth
			if opts.MaxDepth > 0 && depth >= opts.MaxDepth {
				res.DepthBounded = true
				continue
			}
			for _, succ := range m.Successors(s) {
				res.TransitionsExplored++
				if trInv != nil && !trInv(s, succ) {
					res.Holds = false
					res.Counterexample = append(tracePath(visited, s), succ)
					res.StatesExplored = len(visited)
					res.Depth = depth + 1
					return res, nil
				}
				if _, seen := visited[succ]; seen {
					continue
				}
				visited[succ] = bfsNode{parent: s, depth: depth + 1}
				if depth+1 > res.Depth {
					res.Depth = depth + 1
				}
				if stInv != nil && !stInv(succ) {
					res.Holds = false
					res.Counterexample = tracePath(visited, succ)
					res.StatesExplored = len(visited)
					return res, nil
				}
				if len(visited) > opts.MaxStates {
					res.StatesExplored = len(visited)
					return res, fmt.Errorf("%d states: %w", len(visited), ErrStateLimit)
				}
				next = append(next, succ)
			}
		}
		frontier = next
	}
	res.StatesExplored = len(visited)
	return res, nil
}

// tracePath reconstructs the BFS path from an initial state to s inclusive.
func tracePath(visited map[State]bfsNode, s State) []State {
	var rev []State
	for {
		rev = append(rev, s)
		n := visited[s]
		if n.parent == "" && n.depth == 0 {
			break
		}
		s = n.parent
	}
	out := make([]State, len(rev))
	for i, st := range rev {
		out[len(rev)-1-i] = st
	}
	return out
}

// RandomWalker explores by seeded random simulation — a cheap falsification
// pass for models too large to exhaust.
type RandomWalker struct {
	// NextChoice returns a value in [0, n); a seeded RNG in practice.
	NextChoice func(n int) int
}

// Walk runs walks random walks of at most depth steps each, returning the
// first violating trace found, or nil.
func (w RandomWalker) Walk(m Model, inv TransitionInvariant, walks, depth int) []State {
	inits := m.Initial()
	if len(inits) == 0 {
		return nil
	}
	for i := 0; i < walks; i++ {
		s := inits[w.NextChoice(len(inits))]
		trace := []State{s}
		for d := 0; d < depth; d++ {
			succs := m.Successors(s)
			if len(succs) == 0 {
				break
			}
			next := succs[w.NextChoice(len(succs))]
			trace = append(trace, next)
			if !inv(s, next) {
				return trace
			}
			s = next
		}
	}
	return nil
}
