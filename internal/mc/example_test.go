package mc_test

import (
	"fmt"
	"strconv"

	"ttastar/internal/mc"
)

// countTo3 is a toy model: states 0..3, each state steps to its successor.
type countTo3 struct{}

func (countTo3) Initial() []mc.State { return []mc.State{"0"} }

func (countTo3) Successors(s mc.State) []mc.State {
	v, _ := strconv.Atoi(string(s))
	if v >= 3 {
		return nil
	}
	return []mc.State{mc.State(strconv.Itoa(v + 1))}
}

// A violated invariant yields the shortest path to the violation, like
// SMV's counterexamples.
func ExampleCheckInvariant() {
	res, err := mc.CheckInvariant(countTo3{}, func(s mc.State) bool {
		return s != "2"
	}, mc.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Holds, res.Counterexample)
	// Output:
	// false [0 1 2]
}
