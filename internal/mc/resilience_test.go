package mc

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// cancelAfterLevels returns a Progress callback that cancels the context
// once n levels have completed.
func cancelAfterLevels(n int, cancel context.CancelFunc) func(Progress) {
	calls := 0
	return func(Progress) {
		calls++
		if calls == n {
			cancel()
		}
	}
}

// interruptThenResume runs the check with cancellation after cutAt levels
// (flushing a checkpoint), asserts the partial result, then resumes from
// the checkpoint file and returns the resumed result.
func interruptThenResume(t *testing.T, run func(Options) (Result, error),
	workers, cutAt int) Result {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cp")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := run(Options{
		Workers:        workers,
		Context:        ctx,
		CheckpointPath: path,
		Progress:       cancelAfterLevels(cutAt, cancel),
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("workers=%d cut=%d: got err %v, want ErrInterrupted", workers, cutAt, err)
	}
	if !res.Interrupted {
		t.Fatalf("workers=%d cut=%d: Interrupted not set on partial result", workers, cutAt)
	}
	if res.StatesExplored == 0 {
		t.Fatalf("workers=%d cut=%d: partial result discarded states-so-far", workers, cutAt)
	}
	if !strings.Contains(res.String(), "INTERRUPTED") {
		t.Fatalf("partial result string %q lacks INTERRUPTED", res.String())
	}
	resumed, err := run(Options{Workers: workers, ResumePath: path, CheckpointPath: path})
	if err != nil {
		t.Fatalf("workers=%d cut=%d: resume: %v", workers, cutAt, err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("workers=%d cut=%d: checkpoint not removed after conclusive resume", workers, cutAt)
	}
	return resumed
}

func TestInterruptResumeEquivalenceHolds(t *testing.T) {
	m := diamondModel{k: 40}
	inv := func(from, to State) bool { return true }
	run := func(opts Options) (Result, error) { return CheckTransitionInvariant(m, inv, opts) }
	clean, err := run(Options{Workers: 1})
	if err != nil || !clean.Holds {
		t.Fatalf("clean run: %+v, %v", clean, err)
	}
	for _, w := range workerCounts {
		for _, cutAt := range []int{1, 5, 20} {
			resumed := interruptThenResume(t, run, w, cutAt)
			if !equalResults(resumed, clean) {
				t.Fatalf("workers=%d cut=%d: resumed %+v differs from clean %+v", w, cutAt, resumed, clean)
			}
		}
	}
}

func TestInterruptResumeEquivalenceViolation(t *testing.T) {
	m := diamondModel{k: 30}
	inv := func(from, to State) bool { return to != encodeXY(17, 17) }
	run := func(opts Options) (Result, error) { return CheckTransitionInvariant(m, inv, opts) }
	clean, err := run(Options{Workers: 1})
	if err != nil || clean.Holds {
		t.Fatalf("clean run: %+v, %v", clean, err)
	}
	for _, w := range workerCounts {
		resumed := interruptThenResume(t, run, w, 9)
		if !equalResults(resumed, clean) {
			t.Fatalf("workers=%d: resumed %+v differs from clean %+v", w, resumed, clean)
		}
	}
}

func TestInterruptResumeStateInvariant(t *testing.T) {
	m := diamondModel{k: 25}
	inv := func(s State) bool { return s != encodeXY(9, 13) }
	run := func(opts Options) (Result, error) { return CheckInvariant(m, inv, opts) }
	clean, err := run(Options{Workers: 1})
	if err != nil || clean.Holds {
		t.Fatalf("clean run: %+v, %v", clean, err)
	}
	for _, w := range workerCounts {
		resumed := interruptThenResume(t, run, w, 6)
		if !equalResults(resumed, clean) {
			t.Fatalf("workers=%d: resumed %+v differs from clean %+v", w, resumed, clean)
		}
	}
}

// TestDoubleInterruptResume interrupts a run, resumes, interrupts the
// resumed run again, and resumes once more — the final result must still
// be byte-identical to a clean sweep.
func TestDoubleInterruptResume(t *testing.T) {
	m := diamondModel{k: 40}
	inv := func(from, to State) bool { return true }
	clean, err := CheckTransitionInvariant(m, inv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cp")
	for _, cutAt := range []int{4, 11} {
		ctx, cancel := context.WithCancel(context.Background())
		_, err := CheckTransitionInvariant(m, inv, Options{
			Context:        ctx,
			CheckpointPath: path,
			ResumePath:     path,
			Progress:       cancelAfterLevels(cutAt, cancel),
		})
		cancel()
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("cut=%d: got %v, want ErrInterrupted", cutAt, err)
		}
	}
	resumed, err := CheckTransitionInvariant(m, inv, Options{ResumePath: path, CheckpointPath: path})
	if err != nil {
		t.Fatalf("final resume: %v", err)
	}
	if !equalResults(resumed, clean) {
		t.Fatalf("resumed %+v differs from clean %+v", resumed, clean)
	}
}

// TestPeriodicCheckpointResume snapshots a periodic (not interrupt-driven)
// checkpoint mid-run and verifies a run resumed from it matches the clean
// result.
func TestPeriodicCheckpointResume(t *testing.T) {
	m := diamondModel{k: 25}
	inv := func(from, to State) bool { return true }
	clean, err := CheckTransitionInvariant(m, inv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cp := filepath.Join(dir, "cp")
	saved := filepath.Join(dir, "saved")
	copied := false
	res, err := CheckTransitionInvariant(m, inv, Options{
		CheckpointPath:  cp,
		CheckpointEvery: 3,
		Progress: func(p Progress) {
			if p.Depth == 10 && !copied {
				data, err := os.ReadFile(cp)
				if err != nil {
					t.Errorf("no periodic checkpoint at depth 10: %v", err)
					return
				}
				if err := os.WriteFile(saved, data, 0o644); err != nil {
					t.Error(err)
					return
				}
				copied = true
			}
		},
	})
	if err != nil || !equalResults(res, clean) {
		t.Fatalf("checkpointing run diverged: %+v, %v", res, err)
	}
	if _, err := os.Stat(cp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("checkpoint not removed after conclusive run")
	}
	if !copied {
		t.Fatal("periodic checkpoint was never observed")
	}
	resumed, err := CheckTransitionInvariant(m, inv, Options{ResumePath: saved})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !equalResults(resumed, clean) {
		t.Fatalf("resumed %+v differs from clean %+v", resumed, clean)
	}
}

func TestResumeMissingFileStartsFresh(t *testing.T) {
	m := diamondModel{k: 10}
	inv := func(from, to State) bool { return true }
	clean, err := CheckTransitionInvariant(m, inv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckTransitionInvariant(m, inv, Options{
		ResumePath: filepath.Join(t.TempDir(), "absent"),
	})
	if err != nil {
		t.Fatalf("missing resume file must not be an error: %v", err)
	}
	if !equalResults(res, clean) {
		t.Fatalf("fresh-start result %+v differs from clean %+v", res, clean)
	}
}

func TestDeadlineSurfacesErrDeadline(t *testing.T) {
	m := diamondModel{k: 10}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := CheckTransitionInvariant(m, func(from, to State) bool { return true },
		Options{Context: ctx})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("got %v, want ErrDeadline", err)
	}
	if !errors.Is(err, ErrDeadline) || errors.Is(err, ErrInterrupted) {
		t.Fatalf("deadline must surface as ErrDeadline, not ErrInterrupted: %v", err)
	}
	if !res.Interrupted {
		t.Fatal("Interrupted not set on deadline")
	}
}

func TestFallbackInconclusive(t *testing.T) {
	m := counterModel{max: 1000}
	res, err := CheckTransitionInvariant(m, func(from, to State) bool { return true },
		Options{MaxStates: 10, FallbackWalks: 8, FallbackDepth: 64, FallbackSeed: 7})
	if err != nil {
		t.Fatalf("fallback must degrade, not fail: %v", err)
	}
	if !res.Inconclusive || !res.Holds {
		t.Fatalf("want inconclusive holds, got %+v", res)
	}
	if res.SampledWalks != 8 || res.SampledDepth != 64 {
		t.Fatalf("coverage stats wrong: %+v", res)
	}
	if !strings.Contains(res.String(), "INCONCLUSIVE") {
		t.Fatalf("result string %q lacks INCONCLUSIVE", res.String())
	}
}

func TestFallbackDefaultDepth(t *testing.T) {
	m := counterModel{max: 1000}
	res, err := CheckTransitionInvariant(m, func(from, to State) bool { return true },
		Options{MaxStates: 10, FallbackWalks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.SampledDepth != 1024 {
		t.Fatalf("default fallback depth = %d, want 1024", res.SampledDepth)
	}
}

func TestFallbackFindsTransitionViolation(t *testing.T) {
	m := counterModel{max: 100}
	inv := func(from, to State) bool { return decodeInt(to) < 50 }
	res, err := CheckTransitionInvariant(m, inv, Options{
		MaxStates: 5, FallbackWalks: 4, FallbackSeed: 1,
	})
	if err != nil {
		t.Fatalf("fallback must degrade, not fail: %v", err)
	}
	if res.Holds || res.Inconclusive {
		t.Fatalf("fallback missed the violation: %+v", res)
	}
	assertGenuineCounterTrace(t, res.Counterexample)
	if decodeInt(res.Counterexample[len(res.Counterexample)-1]) < 50 {
		t.Fatalf("trace does not end in a violation: %v", res.Counterexample)
	}
}

func TestFallbackFindsStateViolation(t *testing.T) {
	m := counterModel{max: 100}
	inv := func(s State) bool { return decodeInt(s) < 50 }
	res, err := CheckInvariant(m, inv, Options{
		MaxStates: 5, FallbackWalks: 4, FallbackSeed: 3,
	})
	if err != nil {
		t.Fatalf("fallback must degrade, not fail: %v", err)
	}
	if res.Holds || res.Inconclusive {
		t.Fatalf("fallback missed the violation: %+v", res)
	}
	assertGenuineCounterTrace(t, res.Counterexample)
}

// assertGenuineCounterTrace checks a fallback counterexample is a real
// path of the counter model: rooted at the initial state, every step a
// legal +1/+2 transition.
func assertGenuineCounterTrace(t *testing.T, trace []State) {
	t.Helper()
	if len(trace) == 0 || trace[0] != encodeInt(0) {
		t.Fatalf("trace %v is not rooted at the initial state", trace)
	}
	for i := 1; i < len(trace); i++ {
		d := decodeInt(trace[i]) - decodeInt(trace[i-1])
		if d != 1 && d != 2 {
			t.Fatalf("trace step %d→%d is not a legal transition", decodeInt(trace[i-1]), decodeInt(trace[i]))
		}
	}
}

func TestNoFallbackKeepsStateLimitError(t *testing.T) {
	m := counterModel{max: 1000}
	_, err := CheckTransitionInvariant(m, func(from, to State) bool { return true },
		Options{MaxStates: 10})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("got %v, want ErrStateLimit without fallback", err)
	}
}
