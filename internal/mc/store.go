package mc

// ShardStore: the visited-set slice a distributed worker owns.
//
// The coordinator/worker protocol (internal/dist) partitions the state
// space by the same shard hash the in-process engine uses — shard =
// low bits of the FNV-1a state hash — assigning each worker a subset of
// the 64 shards. A worker's store holds exactly the admitted states of
// its shards, so the union of all worker stores at a level barrier is
// bit-for-bit the single-process visited set at the same barrier, and
// the min-claim-key determinism argument carries across process
// boundaries unchanged.
//
// The one representation difference from the engine's visitedSet: an
// entry's parent field here is an intern-table index of the parent's
// *encoding*, not a slot ref. A parent may live on another worker, so a
// ref into the local log cannot name it — but its encoding can, and the
// intern table dedupes the copies (a state's children share one parent
// entry). That makes every worker's store self-contained: it snapshots
// to the ordinary checkpoint-v4 format (parent encodings are exactly
// what the format stores) and restores on a fresh process with nothing
// but the file, which is what crash recovery needs.

import (
	"fmt"
	"sort"
)

// NumShards is the visited-set shard count. The distributed layer
// assigns ownership per shard, so it is the unit of partitioning and of
// crash recovery.
const NumShards = numShards

// HashState returns the engine's state hash (64-bit FNV-1a) for an
// encoding — the hash claim keys, shard selection and probe sequences
// are all derived from.
func HashState(enc []byte) uint64 { return hashBytes(enc) }

// KeySuccBits is the successor-index width of a claim key (see
// claimKey in engine.go): key = base + slot<<KeySuccBits + succ.
const KeySuccBits = keySuccBits

// KeyMax is the largest representable claim key; the key space is
// exhausted once a level's base would mint keys beyond it.
const KeyMax = keyMask

// ClaimKey mints the claim key for successor succ of frontier slot
// slot under a level's base — the engine's serial examination order,
// exported so the distributed layer mints identical keys.
func ClaimKey(base uint64, slot, succ int) uint64 { return claimKey(base, slot, succ) }

// ShardOf maps a state hash to its shard index.
func ShardOf(h uint64) uint32 { return uint32(h) & (numShards - 1) }

// ExpanderFor returns the model's allocation-free expander when it
// offers one, else an adapter over Model.Successors.
func ExpanderFor(m Model) Expander { return expanderFor(m) }

// ConcretizeTrace decanonicalizes a counterexample produced by a
// reduced (quotient) search into a concrete witness, re-verifying the
// violation against the oracle semantics in the process. For a model
// without a reduction it returns the trace unchanged.
func ConcretizeTrace(m Model, trInv TransitionInvariantBytes, canonTrace []State) ([]State, error) {
	rm, ok := m.(ReducibleModel)
	if !ok {
		return canonTrace, nil
	}
	return concretize(m, rm, trInv, canonTrace)
}

// ClaimStatus is the outcome of a ShardStore claim.
type ClaimStatus int

const (
	// ClaimNew: the state was admitted for the first time.
	ClaimNew ClaimStatus = iota
	// ClaimDup: the state was already visited (its key may have been
	// lowered by a same-level takeover).
	ClaimDup
	// ClaimFull: the state budget is exhausted; the state was NOT
	// admitted.
	ClaimFull
)

// ShardStore is a worker-owned slice of the visited set, with parents
// stored as interned encodings (see the package comment above). It is
// NOT safe for concurrent use — a distributed worker is single-threaded
// by design, process-level parallelism being the point.
type ShardStore struct {
	v       *visitedSet
	claimed []uint32 // refs admitted since the last DrainLevel
	pc      probeCounter

	// One-entry parent-intern cache: successive claims overwhelmingly
	// share a parent (a mesh batch group is one parent's successors),
	// so remembering the last interned encoding turns the per-claim
	// intern-map lookup into a short byte compare. lastParent is the
	// table's canonical slab-backed string, so the compare needs no
	// copy and the reference stays valid forever.
	lastParent string
	lastIdx    uint32
	haveLast   bool
}

// NewShardStore returns an empty store bounded at maxStates admitted
// states (<= 0 means the engine's default budget).
func NewShardStore(maxStates int) *ShardStore {
	if maxStates <= 0 {
		maxStates = defaultMaxStates
	}
	s := &ShardStore{v: newVisitedSet(maxStates)}
	// Parents here are intern-table indexes, not refs: the sealed tier
	// must store them as fixed-width words (their values depend on mesh
	// arrival order, so delta-coding them would make arena *sizes* racy)
	// and must never rewrite them at a seal.
	s.v.parentIsRef = false
	return s
}

// Claim tries to admit enc under key, recording parentEnc (when
// hasParent) as the trace parent. levelBase is the lowest key minted in
// the current level, exactly as in the engine: a same-level duplicate
// with a lower key takes over the parent record (min-key reduction),
// an earlier-level duplicate is immutable. The returned ref is valid
// only for ClaimNew.
func (s *ShardStore) Claim(enc []byte, key uint64, parentEnc []byte, hasParent bool, levelBase uint64) (ClaimStatus, uint32) {
	parent := uint32(0)
	if hasParent {
		if s.haveLast && string(parentEnc) == s.lastParent {
			parent = s.lastIdx
		} else {
			idx, canon, added := s.v.overflow.intern(parentEnc)
			if added > 0 {
				s.v.resident.Add(added)
				s.v.bumpPeak()
			}
			parent = idx
			s.lastParent, s.lastIdx, s.haveLast = canon, idx, true
		}
	}
	st, ref := s.v.claim(enc, hashBytes(enc), parent, key, hasParent, levelBase, &s.pc)
	switch st {
	case claimNew:
		s.claimed = append(s.claimed, ref)
		return ClaimNew, ref
	case claimDup:
		return ClaimDup, 0
	default:
		return ClaimFull, 0
	}
}

// DrainLevel returns the states admitted since the previous drain,
// ordered by their final (post-takeover) claim keys — the worker's
// contribution to the next frontier — plus those keys, aligned.
func (s *ShardStore) DrainLevel() ([]uint32, []uint64) {
	refs := s.claimed
	s.claimed = nil
	sort.Slice(refs, func(i, j int) bool { return s.v.keyOf(refs[i]) < s.v.keyOf(refs[j]) })
	keys := make([]uint64, len(refs))
	for i, r := range refs {
		keys[i] = s.v.keyOf(r)
	}
	return refs, keys
}

// BytesOf returns the encoding of an admitted state. For a live state
// the slice aliases the store's entry log; a sealed state decodes into
// a fresh allocation.
func (s *ShardStore) BytesOf(ref uint32) []byte { return s.v.bytesOf(ref) }

// SealLevel migrates refs — a fully-expanded level's states, in the
// order DrainLevel returned them (deterministic final-key order, so
// every worker count builds identical arenas) — into the sealed tier,
// and rewrites the live ref arrays passed as rewrite (the worker's
// current frontier, typically) plus any refs claimed since the last
// drain to the post-seal ordinal space. Must only be called at a level
// barrier, after the sealed level can no longer be re-keyed: its
// successors' level has fully drained.
func (s *ShardStore) SealLevel(refs []uint32, rewrite ...[]uint32) {
	if len(s.claimed) > 0 {
		rewrite = append(rewrite, s.claimed)
	}
	s.v.seal(refs, rewrite...)
}

// KeyOf returns the state's current (winning) claim key.
func (s *ShardStore) KeyOf(ref uint32) uint64 { return s.v.keyOf(ref) }

// ParentOf resolves a state's trace parent by encoding. found reports
// whether enc is admitted at all; hasParent distinguishes roots. Works
// for both tiers — trace queries reach arbitrarily old levels.
func (s *ShardStore) ParentOf(enc []byte) (parent State, hasParent, found bool) {
	ref, ok := s.v.find(enc, hashBytes(enc))
	if !ok {
		return "", false, false
	}
	ps, has := s.parentStringOf(ref)
	if !has {
		return "", false, true
	}
	return State(ps), true, true
}

// Count returns the number of admitted states.
func (s *ShardStore) Count() int64 { return s.v.count.Load() }

// Resident returns the store's exact resident byte footprint.
func (s *ShardStore) Resident() int64 { return s.v.resident.Load() }

// Snapshot captures the store as an ordinary checkpoint: every admitted
// state with its parent encoding, plus frontier (the refs of the level
// just drained, in key order) so a restored worker can re-expand the
// in-flight level. Entries are state-sorted, so snapshot bytes are
// canonical.
func (s *ShardStore) Snapshot(depth int32, reduced bool, fingerprint uint64, frontier []uint32) *Checkpoint {
	v := s.v
	cp := &Checkpoint{
		Depth:       depth,
		Reduced:     reduced,
		Fingerprint: fingerprint,
		Frontier:    make([]State, len(frontier)),
		Visited:     make([]VisitedEntry, 0, v.count.Load()),
	}
	for i, ref := range frontier {
		cp.Frontier[i] = v.stateOf(ref)
	}
	for si := range v.shards {
		sh := &v.shards[si]
		for o := uint32(0); o < sh.ordCount; o++ {
			ref := makeRef(uint32(si), o)
			e := VisitedEntry{State: v.stateOf(ref)}
			if ps, has := s.parentStringOf(ref); has {
				e.Parent = State(ps)
				e.HasParent = true
			}
			cp.Visited = append(cp.Visited, e)
		}
	}
	sort.Slice(cp.Visited, func(i, j int) bool { return cp.Visited[i].State < cp.Visited[j].State })
	return cp
}

// WriteDelta atomically writes a per-level delta snapshot: a
// checkpoint-v4 file holding ONLY the states of levelRefs (the refs the
// last DrainLevel returned) plus the worker's complete current
// frontier. A worker's chain of delta files w-l0..lK therefore covers
// exactly its visited set through level K, and each file is readable by
// the ordinary ReadCheckpoint — restore replays the chain through
// Merge. Unlike Snapshot, this streams straight from the entry log with
// no per-state materialization or re-sorting, so barrier cost is
// O(level), not O(visited) — and not O(level·log level) either.
//
// Entries keep levelRefs' order: DrainLevel's final-claim-key order,
// which the min-key reduction makes deterministic for a deterministic
// level (arrival order of mesh frames never reaches it). Delta bytes
// are therefore still run-to-run identical, just not state-sorted the
// way full Snapshots are; readers (Restore/Merge) are order-blind.
func (s *ShardStore) WriteDelta(path string, depth int32, reduced bool, fingerprint uint64, levelRefs, frontier []uint32) error {
	v := s.v
	refs := levelRefs
	return writeCheckpointFile(path, checkpointVersion, func(w *cpWriter) {
		w.uvarint(uint64(uint32(depth)))
		w.uvarint(0) // ResultDepth: deltas never carry a verdict
		w.uvarint(0) // Transitions: priced by the coordinator's ledger
		flags := uint64(0)
		if reduced {
			flags |= checkpointFlagReduced
		}
		w.uvarint(flags)
		w.uvarint(fingerprint)
		w.uvarint(uint64(len(frontier)))
		for _, r := range frontier {
			w.bstr(v.bytesOf(r))
		}
		w.uvarint(uint64(len(refs)))
		for _, r := range refs {
			w.bstr(v.bytesOf(r))
			pb, has := s.parentStringOf(r)
			w.sstr(pb)
			hp := byte(0)
			if has {
				hp = 1
			}
			w.byte1(hp)
		}
	})
}

// parentStringOf resolves an admitted state's interned parent encoding
// without copying it. The parent word is internIdx<<1 | hasParent in
// both tiers (parentIsRef == false here).
func (s *ShardStore) parentStringOf(ref uint32) (string, bool) {
	pw := s.v.parentWordOf(ref)
	if pw&1 == 0 {
		return "", false
	}
	return s.v.overflow.lookup(uint32(pw >> 1)), true
}

// Restore loads a snapshot into an empty store and returns the saved
// frontier refs in stored (key) order. Restored entries claim with key
// 0, so any in-flight level's base orders strictly past them.
func (s *ShardStore) Restore(cp *Checkpoint) ([]uint32, error) {
	v := s.v
	if v.count.Load() != 0 {
		return nil, fmt.Errorf("mc: ShardStore.Restore on a non-empty store")
	}
	if int64(len(cp.Visited)) > v.max {
		return nil, fmt.Errorf("mc: snapshot holds %d states, over the %d-state budget: %w",
			len(cp.Visited), v.max, ErrStateLimit)
	}
	for _, e := range cp.Visited {
		parent := uint32(0)
		if e.HasParent {
			idx, _, added := v.overflow.intern([]byte(e.Parent))
			if added > 0 {
				v.resident.Add(added)
			}
			parent = idx
		}
		enc := []byte(e.State)
		st, _ := v.claim(enc, hashBytes(enc), parent, 0, e.HasParent, 1, &s.pc)
		if st != claimNew {
			return nil, fmt.Errorf("%w: duplicate visited state", ErrCheckpointCorrupt)
		}
	}
	v.bumpPeak()
	frontier := make([]uint32, len(cp.Frontier))
	for i, st := range cp.Frontier {
		enc := []byte(st)
		ref, ok := v.find(enc, hashBytes(enc))
		if !ok {
			return nil, fmt.Errorf("%w: frontier state missing from visited set", ErrCheckpointCorrupt)
		}
		frontier[i] = ref
	}
	s.claimed = nil
	return frontier, nil
}

// Merge loads a snapshot's states into a store that may already hold
// other shards' states — the takeover path of crash recovery, where a
// surviving worker absorbs a dead worker's slice. The incoming shards
// must be disjoint from the store's current contents.
func (s *ShardStore) Merge(cp *Checkpoint) ([]uint32, error) {
	if _, err := s.mergeClaims(cp); err != nil {
		return nil, err
	}
	return s.frontierRefs(cp)
}

// MergeSealed is Merge for a sealed-tier store: the snapshot's visited
// states are claimed and then migrated straight to the sealed tier.
// Restored entries claim with key 0 — below every level base a running
// search can mint — so they can never be re-keyed and owe no live
// residency. The seal compacts the store's surviving live entries, so
// every ref array the caller holds across the call must be passed as
// rewrite (the store's own pending-drain list is rewritten implicitly).
// The returned frontier refs address the sealed tier and remain valid
// inputs to BytesOf and expansion.
func (s *ShardStore) MergeSealed(cp *Checkpoint, rewrite ...[]uint32) ([]uint32, error) {
	refs, err := s.mergeClaims(cp)
	if err != nil {
		return nil, err
	}
	if len(refs) > 0 {
		s.SealLevel(refs, rewrite...)
	}
	return s.frontierRefs(cp)
}

// mergeClaims claims every visited entry of the snapshot, returning the
// admitted refs in snapshot order.
func (s *ShardStore) mergeClaims(cp *Checkpoint) ([]uint32, error) {
	v := s.v
	refs := make([]uint32, 0, len(cp.Visited))
	for _, e := range cp.Visited {
		parent := uint32(0)
		if e.HasParent {
			idx, _, added := v.overflow.intern([]byte(e.Parent))
			if added > 0 {
				v.resident.Add(added)
			}
			parent = idx
		}
		enc := []byte(e.State)
		st, ref := v.claim(enc, hashBytes(enc), parent, 0, e.HasParent, 1, &s.pc)
		switch st {
		case claimNew:
			refs = append(refs, ref)
		case claimFull:
			return nil, fmt.Errorf("mc: merge over the %d-state budget: %w", v.max, ErrStateLimit)
		default:
			return nil, fmt.Errorf("%w: merged snapshot overlaps the store", ErrCheckpointCorrupt)
		}
	}
	v.bumpPeak()
	return refs, nil
}

// frontierRefs resolves the snapshot's frontier states to refs in the
// store's current ordinal space.
func (s *ShardStore) frontierRefs(cp *Checkpoint) ([]uint32, error) {
	v := s.v
	frontier := make([]uint32, len(cp.Frontier))
	for i, st := range cp.Frontier {
		enc := []byte(st)
		ref, ok := v.find(enc, hashBytes(enc))
		if !ok {
			return nil, fmt.Errorf("%w: frontier state missing from visited set", ErrCheckpointCorrupt)
		}
		frontier[i] = ref
	}
	return frontier, nil
}
