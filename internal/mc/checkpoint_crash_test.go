package mc

// Crash-consistency tests for the checkpoint writer: a write that dies at
// ANY byte offset must leave the previous snapshot readable and the
// directory free of temp litter, and a reader handed a damaged file must
// reject it without modifying it. The mid-write failures are injected
// through the checkpointWrapWriter seam, so every offset of the real
// serialization stream is exercised without filesystem tricks.

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
)

// tornWriter passes bytes through until limit, then fails every write.
type tornWriter struct {
	w       io.Writer
	limit   int
	written int
}

var errTorn = errors.New("torn write injected")

func (tw *tornWriter) Write(p []byte) (int, error) {
	if tw.written >= tw.limit {
		return 0, errTorn
	}
	if room := tw.limit - tw.written; len(p) > room {
		n, _ := tw.w.Write(p[:room])
		tw.written += n
		return n, errTorn
	}
	n, err := tw.w.Write(p)
	tw.written += n
	return n, err
}

// altCheckpoint is a snapshot distinguishable from sampleCheckpoint in
// every field, so a partially applied overwrite cannot masquerade as
// either complete snapshot.
func altCheckpoint() *Checkpoint {
	return &Checkpoint{
		Depth:       9,
		ResultDepth: 8,
		Transitions: 9876,
		Fingerprint: 0x0123456789abcdef,
		Frontier:    []State{"x", "yy"},
		Visited: []VisitedEntry{
			{State: "x", Parent: "", HasParent: false},
			{State: "yy", Parent: "x", HasParent: true},
		},
	}
}

// TestCheckpointTornWriteKeepsOldSnapshot kills the serialization stream
// at every byte offset of an overwriting snapshot and checks, after each
// failed attempt, that (a) WriteCheckpoint reported the failure, (b) the
// pre-existing snapshot still reads back byte-identical, and (c) no temp
// file is left behind. A final unwrapped write must then succeed — the
// torn attempts may not have wedged the path.
func TestCheckpointTornWriteKeepsOldSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cp")
	old := sampleCheckpoint()
	if err := WriteCheckpoint(path, old); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	seed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Measure the replacement snapshot's full stream length with a
	// counting pass against a scratch path.
	repl := altCheckpoint()
	scratch := filepath.Join(dir, "scratch")
	if err := WriteCheckpoint(scratch, repl); err != nil {
		t.Fatalf("scratch write: %v", err)
	}
	scratchData, err := os.ReadFile(scratch)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(scratch); err != nil {
		t.Fatal(err)
	}
	total := len(scratchData)

	defer func() { checkpointWrapWriter = nil }()
	for cut := 0; cut < total; cut++ {
		checkpointWrapWriter = func(w io.Writer) io.Writer {
			return &tornWriter{w: w, limit: cut}
		}
		if err := WriteCheckpoint(path, repl); !errors.Is(err, errTorn) {
			t.Fatalf("cut at %d: got %v, want errTorn", cut, err)
		}
		got, err := ReadCheckpoint(path)
		if err != nil {
			t.Fatalf("cut at %d: old snapshot unreadable: %v", cut, err)
		}
		if !reflect.DeepEqual(got, old) {
			t.Fatalf("cut at %d: old snapshot mutated", cut)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != string(seed) {
			t.Fatalf("cut at %d: snapshot bytes changed", cut)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 || entries[0].Name() != "cp" {
			names := make([]string, len(entries))
			for i, e := range entries {
				names[i] = e.Name()
			}
			t.Fatalf("cut at %d: directory litter %v", cut, names)
		}
	}

	checkpointWrapWriter = nil
	if err := WriteCheckpoint(path, repl); err != nil {
		t.Fatalf("final write: %v", err)
	}
	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("final read: %v", err)
	}
	if !reflect.DeepEqual(got, repl) {
		t.Fatalf("final snapshot mismatch:\n got %+v\nwant %+v", got, repl)
	}
}

// enospcWriter fails every write with ENOSPC — a whole WriteCheckpoint
// attempt dies transiently.
type enospcWriter struct{}

func (enospcWriter) Write(p []byte) (int, error) { return 0, syscall.ENOSPC }

// TestWriteCheckpointRetryTransient proves the bounded-backoff wrapper
// rides out transient failures: two ENOSPC attempts, then success, with
// the retry count surfaced to the caller.
func TestWriteCheckpointRetryTransient(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp")
	fails := 2
	checkpointWrapWriter = func(w io.Writer) io.Writer {
		if fails > 0 {
			fails--
			return enospcWriter{}
		}
		return w
	}
	defer func() { checkpointWrapWriter = nil }()

	want := sampleCheckpoint()
	retries, err := WriteCheckpointRetry(path, want)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if retries != 2 {
		t.Fatalf("retries = %d, want 2", retries)
	}
	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-retry snapshot mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestWriteCheckpointRetryPermanent proves a non-transient failure is NOT
// retried: one attempt, the error surfaces as-is.
func TestWriteCheckpointRetryPermanent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp")
	calls := 0
	checkpointWrapWriter = func(w io.Writer) io.Writer {
		calls++
		return &tornWriter{w: io.Discard, limit: 0}
	}
	defer func() { checkpointWrapWriter = nil }()

	retries, err := WriteCheckpointRetry(path, sampleCheckpoint())
	if !errors.Is(err, errTorn) {
		t.Fatalf("got %v, want errTorn", err)
	}
	if retries != 0 || calls != 1 {
		t.Fatalf("retries=%d calls=%d, want a single undecorated attempt", retries, calls)
	}
}

// TestReadCheckpointLeavesCorruptFileIntact pins down that the reader is
// strictly read-only: rejecting a damaged snapshot must not modify it,
// so a post-mortem can inspect exactly what the crash left behind.
func TestReadCheckpointLeavesCorruptFileIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp")
	if err := WriteCheckpoint(path, sampleCheckpoint()); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0xff
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("got %v, want ErrBadCheckpoint", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(bad) {
		t.Fatal("reader modified the corrupt file")
	}
}

// FuzzReadCheckpoint throws arbitrary bytes at the reader. The contract
// under fuzzing: never panic, never modify the input file, and any bytes
// it does accept must round-trip — re-serializing the accepted snapshot
// and re-reading it yields the same value.
func FuzzReadCheckpoint(f *testing.F) {
	seedDir := f.TempDir()
	seedPath := filepath.Join(seedDir, "seed")
	if err := WriteCheckpoint(seedPath, sampleCheckpoint()); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte(checkpointMagic))
	mut := append([]byte(nil), valid...)
	mut[len(checkpointMagic)] ^= 0x01 // version byte
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "cp")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		cp, err := ReadCheckpoint(path)
		after, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if string(after) != string(data) {
			t.Fatal("reader modified the file")
		}
		if err != nil {
			return
		}
		back := filepath.Join(t.TempDir(), "back")
		if err := WriteCheckpoint(back, cp); err != nil {
			t.Fatalf("re-serialize accepted snapshot: %v", err)
		}
		cp2, err := ReadCheckpoint(back)
		if err != nil {
			t.Fatalf("re-read re-serialized snapshot: %v", err)
		}
		if !reflect.DeepEqual(cp, cp2) {
			t.Fatalf("accepted snapshot does not round-trip:\n got %+v\nthen %+v", cp, cp2)
		}
	})
}
