package mc

// Unit tests for the distributed worker's ShardStore: claim semantics
// (min-key takeover within a level, immutability across levels, budget
// refusal), key-ordered level drains, and the snapshot/restore/merge
// round trips crash recovery depends on.

import (
	"errors"
	"reflect"
	"testing"
)

func TestShardStoreClaimSemantics(t *testing.T) {
	s := NewShardStore(10)

	// First admission.
	st, ref := s.Claim([]byte("a"), 100, nil, false, 100)
	if st != ClaimNew {
		t.Fatalf("first claim: %v, want ClaimNew", st)
	}
	if got := s.KeyOf(ref); got != 100 {
		t.Fatalf("key = %d, want 100", got)
	}

	// Same-level duplicate with a LOWER key takes over the record.
	if st, _ := s.Claim([]byte("a"), 90, []byte("p"), true, 50); st != ClaimDup {
		t.Fatalf("takeover claim: %v, want ClaimDup", st)
	}
	if got := s.KeyOf(ref); got != 90 {
		t.Fatalf("after takeover key = %d, want 90", got)
	}
	if p, has, found := s.ParentOf([]byte("a")); !found || !has || p != "p" {
		t.Fatalf("after takeover parent = (%q,%v,%v), want (p,true,true)", p, has, found)
	}

	// Same-level duplicate with a HIGHER key does not.
	if st, _ := s.Claim([]byte("a"), 95, []byte("q"), true, 50); st != ClaimDup {
		t.Fatal("higher-key dup should be ClaimDup")
	}
	if got := s.KeyOf(ref); got != 90 {
		t.Fatalf("higher-key dup moved the key to %d", got)
	}

	// An earlier-level record is immutable: levelBase above the stored
	// key marks it as prior-level.
	if st, _ := s.Claim([]byte("a"), 10, []byte("r"), true, 200); st != ClaimDup {
		t.Fatal("prior-level dup should be ClaimDup")
	}
	if got := s.KeyOf(ref); got != 90 {
		t.Fatalf("prior-level dup rewrote the key to %d", got)
	}

	if got := s.Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
}

func TestShardStoreClaimFull(t *testing.T) {
	s := NewShardStore(2)
	s.Claim([]byte("a"), 1, nil, false, 1)
	s.Claim([]byte("b"), 2, nil, false, 1)
	if st, _ := s.Claim([]byte("c"), 3, nil, false, 1); st != ClaimFull {
		t.Fatalf("over-budget claim: %v, want ClaimFull", st)
	}
	// A duplicate of an admitted state is still reported as such, not as
	// budget exhaustion.
	if st, _ := s.Claim([]byte("a"), 1, nil, false, 1); st != ClaimDup {
		t.Fatal("dup after full should be ClaimDup")
	}
	if got := s.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}

func TestShardStoreDrainLevelKeyOrder(t *testing.T) {
	s := NewShardStore(0)
	// Admit out of key order; a takeover lowers one key after admission.
	s.Claim([]byte("x"), 300, nil, false, 100)
	s.Claim([]byte("y"), 100, nil, false, 100)
	s.Claim([]byte("z"), 200, nil, false, 100)
	s.Claim([]byte("x"), 150, nil, false, 100) // takeover: 300 → 150

	refs, keys := s.DrainLevel()
	if !reflect.DeepEqual(keys, []uint64{100, 150, 200}) {
		t.Fatalf("drain keys = %v, want [100 150 200]", keys)
	}
	wantStates := []string{"y", "x", "z"}
	for i, r := range refs {
		if got := string(s.BytesOf(r)); got != wantStates[i] {
			t.Fatalf("drain[%d] = %q, want %q", i, got, wantStates[i])
		}
	}
	// The drain is consumed.
	if refs, _ := s.DrainLevel(); len(refs) != 0 {
		t.Fatalf("second drain returned %d refs", len(refs))
	}
}

func TestShardStoreSnapshotRestoreRoundTrip(t *testing.T) {
	s := NewShardStore(0)
	s.Claim([]byte("root"), 1, nil, false, 1)
	s.Claim([]byte("kid1"), 10, []byte("root"), true, 10)
	s.Claim([]byte("kid2"), 11, []byte("root"), true, 10)
	frontier, _ := s.DrainLevel()

	cp := s.Snapshot(3, true, 0xfeed, frontier)
	if cp.Depth != 3 || !cp.Reduced || cp.Fingerprint != 0xfeed {
		t.Fatalf("snapshot header %+v", cp)
	}

	r := NewShardStore(0)
	restored, err := r.Restore(cp)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if len(restored) != len(frontier) {
		t.Fatalf("restored frontier %d refs, want %d", len(restored), len(frontier))
	}
	for i := range frontier {
		want := string(s.BytesOf(frontier[i]))
		if got := string(r.BytesOf(restored[i])); got != want {
			t.Fatalf("frontier[%d] = %q, want %q", i, got, want)
		}
	}
	if r.Count() != s.Count() {
		t.Fatalf("restored count %d, want %d", r.Count(), s.Count())
	}
	if p, has, found := r.ParentOf([]byte("kid2")); !found || !has || p != "root" {
		t.Fatalf("restored parent of kid2 = (%q,%v,%v)", p, has, found)
	}
	if _, has, found := r.ParentOf([]byte("root")); !found || has {
		t.Fatalf("restored root should be parentless (has=%v found=%v)", has, found)
	}

	// Restore demands an empty store.
	if _, err := r.Restore(cp); err == nil {
		t.Fatal("second restore into a non-empty store succeeded")
	}
}

func TestShardStoreSnapshotCanonical(t *testing.T) {
	a := NewShardStore(0)
	a.Claim([]byte("m"), 5, nil, false, 5)
	a.Claim([]byte("n"), 6, nil, false, 5)
	b := NewShardStore(0)
	b.Claim([]byte("n"), 6, nil, false, 5)
	b.Claim([]byte("m"), 5, nil, false, 5)
	fa, _ := a.DrainLevel()
	fb, _ := b.DrainLevel()
	if !reflect.DeepEqual(a.Snapshot(1, false, 0, fa), b.Snapshot(1, false, 0, fb)) {
		t.Fatal("snapshots differ under admission order")
	}
}

func TestShardStoreMergeDisjointAndOverlap(t *testing.T) {
	// A survivor holding its own shard absorbs a dead worker's snapshot.
	dead := NewShardStore(0)
	dead.Claim([]byte("d1"), 7, nil, false, 7)
	dead.Claim([]byte("d2"), 8, []byte("d1"), true, 7)
	df, _ := dead.DrainLevel()
	cp := dead.Snapshot(2, false, 0, df)

	surv := NewShardStore(0)
	surv.Claim([]byte("s1"), 9, nil, false, 9)

	merged, err := surv.Merge(cp)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if len(merged) != 2 || surv.Count() != 3 {
		t.Fatalf("merge frontier %d refs, count %d; want 2 and 3", len(merged), surv.Count())
	}
	if p, has, _ := surv.ParentOf([]byte("d2")); !has || p != "d1" {
		t.Fatalf("merged parent of d2 = (%q,%v)", p, has)
	}

	// Overlapping states mean the snapshot and the store disagree about
	// shard ownership — corrupt, not mergeable.
	if _, err := surv.Merge(cp); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("overlapping merge: %v, want ErrCheckpointCorrupt", err)
	}
}

func TestShardStoreMergeOverBudget(t *testing.T) {
	dead := NewShardStore(0)
	dead.Claim([]byte("d1"), 1, nil, false, 1)
	dead.Claim([]byte("d2"), 2, nil, false, 1)
	df, _ := dead.DrainLevel()
	cp := dead.Snapshot(1, false, 0, df)

	surv := NewShardStore(3)
	surv.Claim([]byte("s1"), 3, nil, false, 1)
	surv.Claim([]byte("s2"), 4, nil, false, 1)
	if _, err := surv.Merge(cp); !errors.Is(err, ErrStateLimit) {
		t.Fatalf("over-budget merge: %v, want ErrStateLimit", err)
	}
}

func TestShardStoreRestoreOverBudget(t *testing.T) {
	big := NewShardStore(0)
	big.Claim([]byte("a"), 1, nil, false, 1)
	big.Claim([]byte("b"), 2, nil, false, 1)
	big.Claim([]byte("c"), 3, nil, false, 1)
	f, _ := big.DrainLevel()
	cp := big.Snapshot(1, false, 0, f)

	small := NewShardStore(2)
	if _, err := small.Restore(cp); !errors.Is(err, ErrStateLimit) {
		t.Fatalf("over-budget restore: %v, want ErrStateLimit", err)
	}
}
