package mc

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// coloredModel is the minimal reducible system: a counter that steps +1
// or +2 up to max, dragging along a color bit the dynamics ignore —
// "Na" and "Nb" have identical successor sets, so the quotient that
// forces the color to 'a' is an exact bisimulation and halves the
// space. Exactly the structure of the TTA model's dead coupler tail, in
// four bytes.
type coloredModel struct {
	max         int
	irreducible bool // report Reducible() == false (gating tests)
}

func encodeVC(v int, c byte) State { return State(fmt.Sprintf("%03d%c", v, c)) }

func decodeVC(s State) int {
	v, err := strconv.Atoi(string(s[:len(s)-1]))
	if err != nil {
		panic(err)
	}
	return v
}

func (m coloredModel) Initial() []State { return []State{encodeVC(0, 'a')} }

func (m coloredModel) Successors(s State) []State {
	v := decodeVC(s)
	var out []State
	for _, d := range []int{1, 2} {
		if v+d <= m.max {
			out = append(out, encodeVC(v+d, 'a'), encodeVC(v+d, 'b'))
		}
	}
	return out
}

func (m coloredModel) NewExpander() Expander { return &sliceExpander{m: m} }

func (m coloredModel) Reducible() bool { return !m.irreducible }

type coloredCanonExpander struct{ sliceExpander }

func (e *coloredCanonExpander) Canonicalize(enc []byte) {
	if len(enc) > 0 {
		enc[len(enc)-1] = 'a'
	}
}

func (m coloredModel) NewReducedExpander() CanonicalExpander {
	return &coloredCanonExpander{sliceExpander{m: m}}
}

var _ ReducibleModel = coloredModel{}

// TestReducedSyntheticEquivalence: the reduced search halves the colored
// space, keeps the verdict, and marks the Result — identically for any
// worker count.
func TestReducedSyntheticEquivalence(t *testing.T) {
	m := coloredModel{max: 30}
	inv := func(from, to State) bool { return true }
	oracle, err := CheckTransitionInvariant(m, inv, Options{NoReduce: true})
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Reduced {
		t.Fatal("NoReduce run marked Reduced")
	}
	if oracle.StatesExplored != 2*m.max+1 {
		t.Fatalf("oracle states = %d, want %d", oracle.StatesExplored, 2*m.max+1)
	}
	red := acrossWorkers(t, func(workers int) (Result, error) {
		return CheckTransitionInvariant(m, inv, Options{Workers: workers})
	})
	if !red.Reduced {
		t.Fatal("reduced run not marked Reduced")
	}
	if red.Holds != oracle.Holds {
		t.Fatalf("verdicts differ: reduced %v, oracle %v", red.Holds, oracle.Holds)
	}
	if red.StatesExplored != m.max+1 {
		t.Fatalf("reduced states = %d, want %d", red.StatesExplored, m.max+1)
	}
}

// TestReduceGates: the reduction must stand down for state invariants
// (evaluated per concrete state), for models whose configuration is not
// reducible, and under NoReduce — each falls back to oracle semantics.
func TestReduceGates(t *testing.T) {
	m := coloredModel{max: 20}
	res, err := CheckInvariant(m, func(s State) bool { return true }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduced || res.StatesExplored != 2*m.max+1 {
		t.Fatalf("state-invariant check must not reduce: %+v", res)
	}
	// A state-invariant violation that only a non-representative class
	// member exhibits must still be found.
	viol, err := CheckInvariant(m, func(s State) bool { return s != encodeVC(5, 'b') }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if viol.Holds {
		t.Fatal("state-invariant violation on a non-canonical state missed")
	}
	ir := coloredModel{max: 20, irreducible: true}
	res, err = CheckTransitionInvariant(ir, func(from, to State) bool { return true }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduced || res.StatesExplored != 2*ir.max+1 {
		t.Fatalf("irreducible model must not reduce: %+v", res)
	}
}

// TestReducedConcretizeWitness: a violation found in the quotient comes
// back as a concrete trace — rooted at the initial state, every step a
// real transition, final step violating — with Depth matching.
func TestReducedConcretizeWitness(t *testing.T) {
	m := coloredModel{max: 30}
	inv := func(from, to State) bool { return decodeVC(to) != 7 }
	oracle, err := CheckTransitionInvariant(m, inv, Options{NoReduce: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range workerCounts {
		res, err := CheckTransitionInvariant(m, inv, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Holds || !res.Reduced {
			t.Fatalf("workers=%d: want reduced FAILS, got %+v", workers, res)
		}
		if res.Holds != oracle.Holds {
			t.Fatalf("workers=%d: verdict differs from oracle", workers)
		}
		cex := res.Counterexample
		if len(cex) < 2 || cex[0] != encodeVC(0, 'a') {
			t.Fatalf("workers=%d: witness not rooted at the initial state: %v", workers, cex)
		}
		for i := 1; i < len(cex); i++ {
			legal := false
			for _, s := range m.Successors(cex[i-1]) {
				if s == cex[i] {
					legal = true
					break
				}
			}
			if !legal {
				t.Fatalf("workers=%d: witness step %v -> %v is not a transition", workers, cex[i-1], cex[i])
			}
		}
		if inv(cex[len(cex)-2], cex[len(cex)-1]) {
			t.Fatalf("workers=%d: witness does not end in a violation: %v", workers, cex)
		}
		if res.Depth != len(cex)-1 {
			t.Fatalf("workers=%d: Depth %d != len(witness)-1 %d", workers, res.Depth, len(cex)-1)
		}
	}
}

// TestResumeModeMismatch: a checkpoint records whether its states are
// canonical representatives; resuming it in the other mode must fail
// loudly instead of silently mixing the two state spaces.
func TestResumeModeMismatch(t *testing.T) {
	m := coloredModel{max: 400}
	inv := func(from, to State) bool { return true }
	for _, first := range []bool{false, true} { // NoReduce of the interrupted run
		path := filepath.Join(t.TempDir(), "cp")
		ctx, cancel := context.WithCancel(context.Background())
		_, err := CheckTransitionInvariant(m, inv, Options{
			NoReduce:       first,
			Context:        ctx,
			CheckpointPath: path,
			Progress:       cancelAfterLevels(3, cancel),
		})
		cancel()
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("NoReduce=%v: got %v, want ErrInterrupted", first, err)
		}
		cp, err := ReadCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		if cp.Reduced != !first {
			t.Fatalf("NoReduce=%v: checkpoint Reduced=%v", first, cp.Reduced)
		}
		if _, err := CheckTransitionInvariant(m, inv, Options{
			NoReduce:   !first,
			ResumePath: path,
		}); err == nil || !strings.Contains(err.Error(), "no-reduce") {
			t.Fatalf("NoReduce=%v: mode-mismatched resume: got %v, want a mode error", first, err)
		}
		res, err := CheckTransitionInvariant(m, inv, Options{
			NoReduce:       first,
			ResumePath:     path,
			CheckpointPath: path,
		})
		if err != nil {
			t.Fatalf("NoReduce=%v: matched resume: %v", first, err)
		}
		want := m.max + 1
		if first {
			want = 2*m.max + 1
		}
		if res.StatesExplored != want {
			t.Fatalf("NoReduce=%v: resumed to %d states, want %d", first, res.StatesExplored, want)
		}
	}
}

// TestCheckpointReducedRoundTrip: the version-3 flags word survives the
// disk format.
func TestCheckpointReducedRoundTrip(t *testing.T) {
	for _, reduced := range []bool{false, true} {
		cp := &Checkpoint{
			Depth:       3,
			ResultDepth: 3,
			Transitions: 17,
			Reduced:     reduced,
			Frontier:    []State{"005a"},
			Visited:     []VisitedEntry{{State: "000a"}, {State: "005a", Parent: "000a", HasParent: true}},
		}
		path := filepath.Join(t.TempDir(), "cp")
		if err := WriteCheckpoint(path, cp); err != nil {
			t.Fatal(err)
		}
		got, err := ReadCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.Reduced != reduced {
			t.Fatalf("Reduced=%v round-tripped to %v", reduced, got.Reduced)
		}
	}
}

// TestInconclusiveKeepsCheckpoint is the regression test for the
// checkpoint-lifecycle bug: an interrupt leaves a checkpoint, a resumed
// run that degrades to an Inconclusive fallback verdict must KEEP it —
// it is the only resumable state exactly when a re-run with a larger
// budget is wanted — and that re-run must then complete and match the
// clean result, removing the checkpoint only then.
func TestInconclusiveKeepsCheckpoint(t *testing.T) {
	m := counterModel{max: 500}
	inv := func(from, to State) bool { return true }
	clean, err := CheckTransitionInvariant(m, inv, Options{})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "cp")
	ctx, cancel := context.WithCancel(context.Background())
	_, err = CheckTransitionInvariant(m, inv, Options{
		Context:        ctx,
		CheckpointPath: path,
		Progress:       cancelAfterLevels(3, cancel),
	})
	cancel()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("got %v, want ErrInterrupted", err)
	}

	res, err := CheckTransitionInvariant(m, inv, Options{
		ResumePath:     path,
		CheckpointPath: path,
		MaxStates:      20,
		FallbackWalks:  4,
		FallbackDepth:  8,
	})
	if err != nil {
		t.Fatalf("degraded run must not fail: %v", err)
	}
	if !res.Inconclusive {
		t.Fatalf("want Inconclusive, got %+v", res)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint destroyed on Inconclusive verdict: %v", err)
	}

	resumed, err := CheckTransitionInvariant(m, inv, Options{
		ResumePath:     path,
		CheckpointPath: path,
	})
	if err != nil {
		t.Fatalf("re-run with larger budget: %v", err)
	}
	if resumed.Inconclusive || !equalResults(resumed, clean) {
		t.Fatalf("re-run %+v differs from clean %+v", resumed, clean)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("checkpoint not removed after the conclusive re-run")
	}
}

// TestFallbackViolationRemovesCheckpoint: a fallback FAILS is a definite
// verdict, so — unlike Inconclusive — it still clears the checkpoint.
func TestFallbackViolationRemovesCheckpoint(t *testing.T) {
	m := counterModel{max: 100}
	path := filepath.Join(t.TempDir(), "cp")
	if err := os.WriteFile(path, []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := CheckTransitionInvariant(m, func(from, to State) bool { return decodeInt(to) < 50 },
		Options{MaxStates: 5, FallbackWalks: 4, FallbackSeed: 1, CheckpointPath: path})
	if err != nil {
		t.Fatalf("fallback must degrade, not fail: %v", err)
	}
	if res.Holds || res.Inconclusive {
		t.Fatalf("fallback missed the violation: %+v", res)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("checkpoint not removed after definite fallback verdict")
	}
}

// TestConclusiveRemoveErrorSurfaced is the regression test for the
// swallowed os.Remove error: when the stale checkpoint cannot be
// removed, the search must say so — a survivor would silently shadow a
// later -resume run. The checkpoint path descends through a regular
// file, so removal fails with ENOTDIR even when the tests run as root
// (a chmod-based unwritable directory would not stop root).
func TestConclusiveRemoveErrorSurfaced(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := counterModel{max: 10}
	res, err := CheckTransitionInvariant(m, func(from, to State) bool { return true },
		Options{CheckpointPath: filepath.Join(blocker, "cp")})
	if err == nil || !strings.Contains(err.Error(), "removing stale checkpoint") {
		t.Fatalf("got %v, want a checkpoint-removal error", err)
	}
	if !res.Holds {
		t.Fatalf("the verdict itself must survive the removal failure: %+v", res)
	}
}

// TestConclusiveMissingCheckpointIsFine: a conclusive search whose
// checkpoint was never written (no interrupt, no periodic snapshots)
// must not report the absent file as an error.
func TestConclusiveMissingCheckpointIsFine(t *testing.T) {
	m := counterModel{max: 10}
	_, err := CheckTransitionInvariant(m, func(from, to State) bool { return true },
		Options{CheckpointPath: filepath.Join(t.TempDir(), "never-written")})
	if err != nil {
		t.Fatalf("missing checkpoint at conclusive exit must be ignored: %v", err)
	}
}
