package mc

// The flat open-addressing visited set.
//
// PR 4 removed the per-state heap object; this layer removes the Go map
// around it. Each of the 64 shards now owns two structures:
//
//   - An append-only entry log of fixed-width 32-byte slots (20 inline
//     encoding bytes + parent ref + packed meta word), allocated in
//     power-of-two-growing chunks so entries NEVER move once written.
//     That stability is what lets a parent pointer be a plain 32-bit
//     ref (shard | insertion ordinal) instead of a 21-byte key copy.
//   - An open-addressing probe index of uint64 cells
//     [hash fragment:32 | ordinal+1:32] with linear probing, grown by
//     allocate-and-rehash swap behind an atomic pointer. Rehashing moves
//     only 8-byte cells, never entry bytes.
//
// The claim fast path is lock-free: load the index pointer, probe cells
// with atomic loads, and resolve duplicates from earlier BFS levels
// without touching the shard mutex — safe because a cell is published
// with a release store only after its entry bytes are fully written, and
// an entry's meta word (the only mutable field a concurrent reader
// inspects) is accessed atomically. Only a miss, or a duplicate claimed
// within the current level (where a min-key takeover may race), takes
// the shard lock.
//
// Both slots and cells are pointer-free, so the GC never scans the set,
// and the resident footprint is exact: chunks × 32B + cells × 8B +
// interned overflow bytes, tracked in visitedSet.resident for
// Options.MemBudget and Stats.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// numShards is the visited-set shard count; a power of two so the shard
// index is a mask of the state hash.
const numShards = 64

const (
	shardBits = 6 // log2(numShards)
	// ordBits bounds the per-shard entry count: refs pack
	// (ordinal << shardBits | shard) into 32 bits.
	ordBits    = 32 - shardBits
	maxOrdinal = 1<<ordBits - 1

	// Entry chunks grow as 16, 32, 64, ... entries; chunk c spans
	// ordinals [16·(2^c−1), 16·(2^(c+1)−1)). 23 chunks cover every
	// ordinal ref bits can address.
	entryChunkBase = 16
	maxEntryChunks = 23

	// initialIndexCells is the probe index's starting size per shard —
	// small, because tiny test models touch most shards with a handful
	// of states each. The index quadruples while small and doubles once
	// past growDoubleAt cells, and grows when count exceeds 3/4 of
	// capacity.
	initialIndexCells = 32
	growDoubleAt      = 2048
)

// entry is one visited state: a 32-byte pointer-free slot.
//
// meta packs [spare:6 | nfield:5 | hasParent:1 | key:52]:
//
//	nfield    0 = unpublished, 1..21 = inline length+1, 31 = overflow
//	          (data[:4] then holds an intern-table index)
//	hasParent distinguishes root states from children explicitly
//	key       the state's winning (lowest) claim key — globally
//	          monotone across levels, see claimKey in engine.go
//
// data and parent are written before the index cell that publishes the
// entry and are immutable afterwards, except parent + meta which a
// same-level min-key takeover rewrites under the shard lock; meta is
// therefore accessed atomically wherever a lock-free probe can observe
// it.
type entry struct {
	data   [inlineStateBytes]byte
	parent uint32
	meta   uint64
}

const (
	keyBits        = 52
	keyMask        = 1<<keyBits - 1
	hasParentBit   = 1 << keyBits
	nfieldShift    = keyBits + 1
	nfieldOverflow = 31
)

func packMeta(nfield uint64, hasParent bool, key uint64) uint64 {
	m := nfield<<nfieldShift | key
	if hasParent {
		m |= hasParentBit
	}
	return m
}

func metaNfield(m uint64) uint64 { return m >> nfieldShift & 31 }
func metaKey(m uint64) uint64    { return m & keyMask }

// chunkOf locates ordinal o in the chunked entry log.
func chunkOf(o uint32) (c int, off uint32) {
	c = bits.Len32(o/entryChunkBase+1) - 1
	off = o - entryChunkBase*(1<<c-1)
	return c, off
}

// flatShard is one visited-set shard: the entry log, its probe index,
// and the mutex serializing inserts and same-level takeovers.
type flatShard struct {
	mu       sync.Mutex
	index    atomic.Pointer[[]uint64]
	chunks   [maxEntryChunks]atomic.Pointer[[]entry]
	ordCount uint32 // entries appended; written only under mu
}

// entryAt returns the (stable) entry for ordinal o. Callers must have
// observed o's publication: either through an index cell load or a
// happens-before edge such as the level barrier.
func (sh *flatShard) entryAt(o uint32) *entry {
	c, off := chunkOf(o)
	return &(*sh.chunks[c].Load())[off]
}

// visitedSet is the sharded, budget-bounded flat visited set.
type visitedSet struct {
	shards   [numShards]flatShard
	count    atomic.Int64 // states admitted; never exceeds max
	max      int64
	resident atomic.Int64 // exact live bytes: chunks + index cells + intern
	peak     atomic.Int64 // high-water resident, including growth transients
	overflow internTable  // encodings too long for a slot's inline array
}

func newVisitedSet(maxStates int) *visitedSet {
	v := &visitedSet{max: int64(maxStates)}
	// Seed every shard's initial probe index and first entry chunk from
	// two shared backing arrays: four allocations for the whole set
	// instead of two per touched shard, which is what a 64-shard layout
	// would otherwise cost even a 100-state model.
	indexBacking := make([]uint64, numShards*initialIndexCells)
	chunkBacking := make([]entry, numShards*entryChunkBase)
	idxHeaders := make([][]uint64, numShards)
	chunkHeaders := make([][]entry, numShards)
	for i := range v.shards {
		lo, hi := i*initialIndexCells, (i+1)*initialIndexCells
		idxHeaders[i] = indexBacking[lo:hi:hi]
		v.shards[i].index.Store(&idxHeaders[i])
		lo, hi = i*entryChunkBase, (i+1)*entryChunkBase
		chunkHeaders[i] = chunkBacking[lo:hi:hi]
		v.shards[i].chunks[0].Store(&chunkHeaders[i])
	}
	v.resident.Store(numShards * (initialIndexCells*8 + entryChunkBase*32))
	v.bumpPeak()
	return v
}

func (v *visitedSet) bumpPeak() {
	r := v.resident.Load()
	for {
		p := v.peak.Load()
		if r <= p || v.peak.CompareAndSwap(p, r) {
			return
		}
	}
}

// Refs: a visited state is addressed by (ordinal << shardBits | shard).

func makeRef(shard, ord uint32) uint32 { return ord<<shardBits | shard }

func (v *visitedSet) entryOf(ref uint32) *entry {
	return v.shards[ref&(numShards-1)].entryAt(ref >> shardBits)
}

// bytesOf returns the encoding of a visited state. The inline path
// aliases the entry's slot — stable for the set's lifetime because
// entries never move.
func (v *visitedSet) bytesOf(ref uint32) []byte {
	e := v.entryOf(ref)
	m := atomic.LoadUint64(&e.meta)
	if nf := metaNfield(m); nf != nfieldOverflow {
		return e.data[:nf-1]
	}
	return []byte(v.overflow.lookup(binary.LittleEndian.Uint32(e.data[:4])))
}

// stateOf converts a visited state back to the opaque State form
// (allocates; used only on cold paths: traces, checkpoints).
func (v *visitedSet) stateOf(ref uint32) State {
	return State(v.bytesOf(ref))
}

// keyOf returns the state's current (winning) claim key.
func (v *visitedSet) keyOf(ref uint32) uint64 {
	return metaKey(atomic.LoadUint64(&v.entryOf(ref).meta))
}

// parentOf returns the state's BFS parent ref, if it has one. Only
// called between levels or after the search.
func (v *visitedSet) parentOf(ref uint32) (uint32, bool) {
	e := v.entryOf(ref)
	return e.parent, atomic.LoadUint64(&e.meta)&hasParentBit != 0
}

// probeBuckets sizes the probe-length histogram: buckets for lengths
// 1..7, plus a tail bucket for 8+.
const probeBuckets = 8

// probeCounter accumulates a probe-length histogram; each worker owns
// one (persistent across levels) so the hot path never shares a cache
// line.
type probeCounter struct {
	hist [probeBuckets]uint64
}

func (p *probeCounter) add(n int) {
	if p == nil {
		return
	}
	if n > probeBuckets {
		n = probeBuckets
	}
	p.hist[n-1]++
}

// keyFields splits an encoding into the slot-comparable form: the
// nfield tag and the bytes actually stored in the slot (the encoding
// itself, or a 4-byte intern index for overflow encodings). Interning
// before the probe keeps comparison a fixed-size byte compare; equal
// encodings always intern to equal indexes.
func (v *visitedSet) keyFields(enc []byte, scratch *[4]byte) (nfield uint64, kb []byte) {
	if len(enc) <= inlineStateBytes {
		return uint64(len(enc)) + 1, enc
	}
	idx, _, added := v.overflow.intern(enc)
	if added > 0 {
		v.resident.Add(added)
		v.bumpPeak()
	}
	binary.LittleEndian.PutUint32(scratch[:], idx)
	return nfieldOverflow, scratch[:]
}

// Claim outcomes.
const (
	claimNew  = iota // state admitted for the first time
	claimDup         // state already visited (possibly re-keyed)
	claimFull        // state budget exhausted; state NOT admitted
)

// claim tries to admit enc with the given parent ref and claim key. h is
// enc's 64-bit FNV-1a hash, computed once by the generating worker: the
// low bits select the shard, the high 32 bits drive the probe sequence
// and serve as the in-cell compare filter.
//
// levelBase is the lowest claim key minted in the current level: an
// existing entry with key < levelBase was claimed in an earlier level
// and can never be re-keyed, so such duplicates resolve entirely
// lock-free. A miss, or a duplicate from the current level (min-key
// takeover), re-probes under the shard lock. The state budget is checked
// before insertion, so the set never holds more than max states.
func (v *visitedSet) claim(enc []byte, h uint64, parent uint32, key uint64,
	hasParent bool, levelBase uint64, pc *probeCounter) (int, uint32) {
	var scratch [4]byte
	nfield, kb := v.keyFields(enc, &scratch)
	shardIdx := uint32(h) & (numShards - 1)
	sh := &v.shards[shardIdx]
	ph := uint32(h >> 32)

	if ip := sh.index.Load(); ip != nil {
		cells := *ip
		mask := uint32(len(cells) - 1)
		i := ph & mask
		for n := 1; ; n++ {
			cell := atomic.LoadUint64(&cells[i])
			if cell == 0 {
				break // not present in this snapshot: insert under lock
			}
			if uint32(cell>>32) == ph {
				e := sh.entryAt(uint32(cell) - 1)
				m := atomic.LoadUint64(&e.meta)
				if metaNfield(m) == nfield && bytes.Equal(e.data[:len(kb)], kb) {
					if metaKey(m) < levelBase {
						pc.add(n)
						return claimDup, 0
					}
					break // current-level duplicate: takeover under lock
				}
			}
			i = (i + 1) & mask
		}
	}

	sh.mu.Lock()
	cells := v.indexLocked(sh)
	mask := uint32(len(cells) - 1)
	i := ph & mask
	for n := 1; ; n++ {
		cell := atomic.LoadUint64(&cells[i])
		if cell == 0 {
			if v.count.Add(1) > v.max {
				v.count.Add(-1)
				sh.mu.Unlock()
				return claimFull, 0
			}
			ord := sh.ordCount
			if ord >= maxOrdinal {
				sh.mu.Unlock()
				panic(fmt.Sprintf("mc: visited-set shard exceeds %d entries", maxOrdinal))
			}
			e := v.entrySlotLocked(sh, ord)
			copy(e.data[:], kb)
			e.parent = parent
			atomic.StoreUint64(&e.meta, packMeta(nfield, hasParent, key))
			sh.ordCount = ord + 1
			// Release-store the cell: the entry above is now visible to
			// any lock-free probe that observes the cell.
			atomic.StoreUint64(&cells[i], uint64(ph)<<32|uint64(ord+1))
			if uint64(sh.ordCount)*4 > uint64(len(cells))*3 {
				v.growIndexLocked(sh, cells)
			}
			sh.mu.Unlock()
			pc.add(n)
			return claimNew, makeRef(shardIdx, ord)
		}
		if uint32(cell>>32) == ph {
			e := sh.entryAt(uint32(cell) - 1)
			m := atomic.LoadUint64(&e.meta)
			if metaNfield(m) == nfield && bytes.Equal(e.data[:len(kb)], kb) {
				if k := metaKey(m); k >= levelBase && key < k {
					// Same-level duplicate with a lower key: take over
					// the parent pointer (min-key reduction).
					e.parent = parent
					atomic.StoreUint64(&e.meta, packMeta(nfield, hasParent, key))
				}
				sh.mu.Unlock()
				pc.add(n)
				return claimDup, 0
			}
		}
		i = (i + 1) & mask
	}
}

// find probes for an already-admitted encoding. Only called between
// levels (restore, tests), but uses the same atomic loads as claim so it
// stays race-clean anywhere.
func (v *visitedSet) find(enc []byte, h uint64) (uint32, bool) {
	var scratch [4]byte
	nfield, kb := v.keyFields(enc, &scratch)
	shardIdx := uint32(h) & (numShards - 1)
	sh := &v.shards[shardIdx]
	ip := sh.index.Load()
	if ip == nil {
		return 0, false
	}
	cells := *ip
	mask := uint32(len(cells) - 1)
	ph := uint32(h >> 32)
	for i := ph & mask; ; i = (i + 1) & mask {
		cell := atomic.LoadUint64(&cells[i])
		if cell == 0 {
			return 0, false
		}
		if uint32(cell>>32) == ph {
			e := sh.entryAt(uint32(cell) - 1)
			m := atomic.LoadUint64(&e.meta)
			if metaNfield(m) == nfield && bytes.Equal(e.data[:len(kb)], kb) {
				return makeRef(shardIdx, uint32(cell)-1), true
			}
		}
	}
}

// indexLocked returns the shard's probe index. Caller holds sh.mu.
func (v *visitedSet) indexLocked(sh *flatShard) []uint64 {
	return *sh.index.Load()
}

// growIndexLocked swaps in a larger probe index, rehashing only the
// 8-byte cells. Caller holds sh.mu. The old index stays valid for
// concurrent lock-free probes until they re-load the pointer; a stale
// probe can only miss recent inserts, which the locked re-probe
// corrects.
func (v *visitedSet) growIndexLocked(sh *flatShard, cells []uint64) {
	newLen := len(cells) * 2
	if newLen < growDoubleAt {
		newLen = len(cells) * 4
	}
	next := make([]uint64, newLen)
	// Both generations are live during the rehash; peak captures that.
	v.resident.Add(int64(newLen * 8))
	v.bumpPeak()
	mask := uint32(newLen - 1)
	for _, cell := range cells {
		if cell == 0 {
			continue
		}
		i := uint32(cell>>32) & mask
		for next[i] != 0 {
			i = (i + 1) & mask
		}
		next[i] = cell
	}
	sh.index.Store(&next)
	// The very first index lives in the set-wide shared backing array,
	// which stays resident for the set's lifetime; only individually
	// allocated generations are released by the swap.
	if len(cells) > initialIndexCells {
		v.resident.Add(int64(-len(cells) * 8))
	}
}

// entrySlotLocked returns the slot for the next ordinal, allocating its
// chunk on first touch. Caller holds sh.mu.
func (v *visitedSet) entrySlotLocked(sh *flatShard, ord uint32) *entry {
	c, off := chunkOf(ord)
	if off == 0 && sh.chunks[c].Load() == nil {
		chunk := make([]entry, entryChunkBase<<c)
		v.resident.Add(int64(len(chunk)) * 32)
		v.bumpPeak()
		sh.chunks[c].Store(&chunk)
	}
	return &(*sh.chunks[c].Load())[off]
}

// loadFactor is the admitted-state count over total probe cells.
func (v *visitedSet) loadFactor() float64 {
	cells := 0
	for i := range v.shards {
		if ip := v.shards[i].index.Load(); ip != nil {
			cells += len(*ip)
		}
	}
	if cells == 0 {
		return 0
	}
	return float64(v.count.Load()) / float64(cells)
}
