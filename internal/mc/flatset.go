package mc

// The flat open-addressing visited set.
//
// PR 4 removed the per-state heap object; this layer removes the Go map
// around it. Each of the 64 shards now owns two structures:
//
//   - An append-only entry log of fixed-width 32-byte slots (20 inline
//     encoding bytes + parent ref + packed meta word), allocated in
//     power-of-two-growing chunks so entries NEVER move once written.
//     That stability is what lets a parent pointer be a plain 32-bit
//     ref (shard | insertion ordinal) instead of a 21-byte key copy.
//   - An open-addressing probe index of uint64 cells
//     [hash fragment:32 | ordinal+1:32] with linear probing, grown by
//     allocate-and-rehash swap behind an atomic pointer. Rehashing moves
//     only 8-byte cells, never entry bytes.
//
// The claim fast path is lock-free: load the index pointer, probe cells
// with atomic loads, and resolve duplicates from earlier BFS levels
// without touching the shard mutex — safe because a cell is published
// with a release store only after its entry bytes are fully written, and
// an entry's meta word (the only mutable field a concurrent reader
// inspects) is accessed atomically. Only a miss, or a duplicate claimed
// within the current level (where a min-key takeover may race), takes
// the shard lock.
//
// Both slots and cells are pointer-free, so the GC never scans the set,
// and the resident footprint is exact: chunks × 32B + cells × 8B +
// interned overflow bytes, tracked in visitedSet.resident for
// Options.MemBudget and Stats.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
)

// numShards is the visited-set shard count; a power of two so the shard
// index is a mask of the state hash.
const numShards = 64

const (
	shardBits = 6 // log2(numShards)
	// ordBits bounds the per-shard entry count: refs pack
	// (ordinal << shardBits | shard) into 32 bits.
	ordBits    = 32 - shardBits
	maxOrdinal = 1<<ordBits - 1

	// Entry chunks grow as 16, 32, 64, ... entries; chunk c spans
	// ordinals [16·(2^c−1), 16·(2^(c+1)−1)). 23 chunks cover every
	// ordinal ref bits can address.
	entryChunkBase = 16
	maxEntryChunks = 23

	// initialIndexCells is the probe index's starting size per shard —
	// small, because tiny test models touch most shards with a handful
	// of states each. The index quadruples while small and doubles once
	// past growDoubleAt cells, and grows when count exceeds 3/4 of
	// capacity.
	initialIndexCells = 32
	growDoubleAt      = 2048
)

// entry is one visited state: a 32-byte pointer-free slot.
//
// meta packs [spare:6 | nfield:5 | hasParent:1 | key:52]:
//
//	nfield    0 = unpublished, 1..21 = inline length+1, 31 = overflow
//	          (data[:4] then holds an intern-table index)
//	hasParent distinguishes root states from children explicitly
//	key       the state's winning (lowest) claim key — globally
//	          monotone across levels, see claimKey in engine.go
//
// data and parent are written before the index cell that publishes the
// entry and are immutable afterwards, except parent + meta which a
// same-level min-key takeover rewrites under the shard lock; meta is
// therefore accessed atomically wherever a lock-free probe can observe
// it.
type entry struct {
	data   [inlineStateBytes]byte
	parent uint32
	meta   uint64
}

const (
	keyBits        = 52
	keyMask        = 1<<keyBits - 1
	hasParentBit   = 1 << keyBits
	nfieldShift    = keyBits + 1
	nfieldOverflow = 31
)

func packMeta(nfield uint64, hasParent bool, key uint64) uint64 {
	m := nfield<<nfieldShift | key
	if hasParent {
		m |= hasParentBit
	}
	return m
}

func metaNfield(m uint64) uint64 { return m >> nfieldShift & 31 }
func metaKey(m uint64) uint64    { return m & keyMask }

// chunkOf locates ordinal o in the chunked entry log.
func chunkOf(o uint32) (c int, off uint32) {
	c = bits.Len32(o/entryChunkBase+1) - 1
	off = o - entryChunkBase*(1<<c-1)
	return c, off
}

// flatShard is one visited-set shard: the live entry log, its probe
// index, the mutex serializing inserts and same-level takeovers, and
// the sealed tier holding every level that has finished expanding
// (sealed.go).
//
// Ordinals are one space: [0, liveBase) are sealed (decoded from the
// arena), [liveBase, ordCount) are live (chunked 32-byte slots at
// position ordinal-liveBase). Sealing at a level boundary migrates the
// just-expanded frontier into the arena, compacts the surviving
// current-level claims down to position 0 and advances liveBase — refs
// therefore change across a seal, and the seal call rewrites every ref
// array the engine still holds.
type flatShard struct {
	mu       sync.Mutex
	index    atomic.Pointer[[]uint64]
	chunks   [maxEntryChunks]atomic.Pointer[[]entry]
	ordCount uint32 // entries appended; written only under mu
	liveBase uint32 // first live ordinal; written only at level barriers
	sealed   sealedShard
}

// entryAt returns the (stable within a level) live entry for ordinal
// o, which must be >= liveBase. Callers must have observed o's
// publication: either through an index cell load or a happens-before
// edge such as the level barrier.
func (sh *flatShard) entryAt(o uint32) *entry {
	c, off := chunkOf(o - sh.liveBase)
	return &(*sh.chunks[c].Load())[off]
}

// entryAtPos addresses a live slot by position directly (seal-time
// compaction, where ordinals are in flux).
func (sh *flatShard) entryAtPos(pos uint32) *entry {
	c, off := chunkOf(pos)
	return &(*sh.chunks[c].Load())[off]
}

// visitedSet is the sharded, budget-bounded flat visited set.
type visitedSet struct {
	shards   [numShards]flatShard
	count    atomic.Int64 // states admitted; never exceeds max
	max      int64
	resident atomic.Int64 // exact live bytes: chunks + index cells + intern
	peak     atomic.Int64 // high-water resident, including growth transients
	overflow internTable  // encodings too long for a slot's inline array

	// parentIsRef selects the sealed tier's parent layout: the engine
	// stores parent refs (rewritten to sealed ordinals and
	// delta-coded); a distributed ShardStore stores parent intern
	// indexes, whose arrival-order-dependent values must be written as
	// fixed-width words to keep arena bytes deterministic.
	parentIsRef bool

	// restoredAll is the claim-order ref list of a v4-checkpoint
	// restore: those entries carry key 0, so the first level boundary
	// cannot tell their levels apart and seals them as one batch in
	// this (deterministic, state-sorted) order. Cleared after that
	// first seal.
	restoredAll []uint32

	// Seal scratch, reused across level boundaries; scratchBytes is its
	// counted capacity so migration transients stay in the resident
	// audit.
	sealGroups   [numShards][]uint32
	sealRemap    [numShards][]uint32
	sealDec      sealedDecoder
	scratchBytes int64
}

func newVisitedSet(maxStates int) *visitedSet {
	v := &visitedSet{max: int64(maxStates), parentIsRef: true}
	// Seed every shard's initial probe index and first entry chunk from
	// two shared backing arrays: four allocations for the whole set
	// instead of two per touched shard, which is what a 64-shard layout
	// would otherwise cost even a 100-state model.
	indexBacking := make([]uint64, numShards*initialIndexCells)
	chunkBacking := make([]entry, numShards*entryChunkBase)
	idxHeaders := make([][]uint64, numShards)
	chunkHeaders := make([][]entry, numShards)
	for i := range v.shards {
		lo, hi := i*initialIndexCells, (i+1)*initialIndexCells
		idxHeaders[i] = indexBacking[lo:hi:hi]
		v.shards[i].index.Store(&idxHeaders[i])
		lo, hi = i*entryChunkBase, (i+1)*entryChunkBase
		chunkHeaders[i] = chunkBacking[lo:hi:hi]
		v.shards[i].chunks[0].Store(&chunkHeaders[i])
	}
	v.resident.Store(numShards * (initialIndexCells*8 + entryChunkBase*32))
	v.bumpPeak()
	return v
}

func (v *visitedSet) bumpPeak() {
	r := v.resident.Load()
	for {
		p := v.peak.Load()
		if r <= p || v.peak.CompareAndSwap(p, r) {
			return
		}
	}
}

// Refs: a visited state is addressed by (ordinal << shardBits | shard).

func makeRef(shard, ord uint32) uint32 { return ord<<shardBits | shard }

// refShard splits a ref and reports whether it addresses the shard's
// sealed tier.
func (v *visitedSet) refShard(ref uint32) (sh *flatShard, ord uint32, sealed bool) {
	sh = &v.shards[ref&(numShards-1)]
	ord = ref >> shardBits
	return sh, ord, ord < sh.liveBase
}

// entryOf returns the live slot for ref, which must not be sealed.
func (v *visitedSet) entryOf(ref uint32) *entry {
	return v.shards[ref&(numShards-1)].entryAt(ref >> shardBits)
}

// encOfLive returns the encoding of a live entry (aliases the slot or
// the intern table).
func (v *visitedSet) encOfLive(e *entry, m uint64) []byte {
	if nf := metaNfield(m); nf != nfieldOverflow {
		return e.data[:nf-1]
	}
	return []byte(v.overflow.lookup(binary.LittleEndian.Uint32(e.data[:4])))
}

// bytesOf returns the encoding of a visited state. The live inline
// path aliases the entry's slot — stable for the level's duration; the
// sealed path decodes into a fresh allocation, and is only reached
// from cold paths (traces, checkpoints, snapshots): by construction
// every ref the hot path touches is live.
func (v *visitedSet) bytesOf(ref uint32) []byte {
	sh, ord, sealed := v.refShard(ref)
	if sealed {
		var d sealedDecoder
		enc, _ := d.decodeAt(&sh.sealed, ord, v.parentIsRef)
		return append([]byte(nil), enc...)
	}
	e := sh.entryAt(ord)
	return v.encOfLive(e, atomic.LoadUint64(&e.meta))
}

// stateOf converts a visited state back to the opaque State form
// (allocates; used only on cold paths: traces, checkpoints).
func (v *visitedSet) stateOf(ref uint32) State {
	return State(v.bytesOf(ref))
}

// keyOf returns the state's current (winning) claim key. Sealed
// entries report key 0: their keys can never win or lose a takeover
// again, so the tier does not store them — callers ordering by key
// (DrainLevel) only ever hold live refs.
func (v *visitedSet) keyOf(ref uint32) uint64 {
	sh, ord, sealed := v.refShard(ref)
	if sealed {
		return 0
	}
	return metaKey(atomic.LoadUint64(&sh.entryAt(ord).meta))
}

// parentWordOf returns the raw sealed-layout parent word for ref:
// ref+1 (0 = none) in engine mode, internIdx<<1|hasParent in dist
// mode. Works for both tiers; only called between levels or after the
// search.
func (v *visitedSet) parentWordOf(ref uint32) uint64 {
	sh, ord, sealed := v.refShard(ref)
	if sealed {
		var d sealedDecoder
		_, pw := d.decodeAt(&sh.sealed, ord, v.parentIsRef)
		return pw
	}
	e := sh.entryAt(ord)
	m := atomic.LoadUint64(&e.meta)
	if v.parentIsRef {
		if m&hasParentBit == 0 {
			return 0
		}
		return uint64(e.parent) + 1
	}
	pw := uint64(e.parent) << 1
	if m&hasParentBit != 0 {
		pw |= 1
	}
	return pw
}

// parentOf returns the state's BFS parent ref, if it has one
// (engine mode only). Only called between levels or after the search.
func (v *visitedSet) parentOf(ref uint32) (uint32, bool) {
	pw := v.parentWordOf(ref)
	if pw == 0 {
		return 0, false
	}
	return uint32(pw - 1), true
}

// sealedStats sums the sealed tier's footprint for Stats: entry count,
// arena bytes (blob + restart offsets) and quotiented-index bytes.
func (v *visitedSet) sealedStats() (states, arena, index int64) {
	for s := range v.shards {
		ss := &v.shards[s].sealed
		states += int64(ss.count)
		arena += int64(len(ss.blob)) + int64(len(ss.restarts)*4)
		index += int64(len(ss.index) * 4)
	}
	return states, arena, index
}

// probeBuckets sizes the probe-length histogram: buckets for lengths
// 1..7, plus a tail bucket for 8+.
const probeBuckets = 8

// probeCounter accumulates a probe-length histogram; each worker owns
// one (persistent across levels) so the hot path never shares a cache
// line. It also carries the worker's sealed-tier decoder, whose
// rolling buffer would otherwise be a per-probe allocation.
type probeCounter struct {
	hist [probeBuckets]uint64
	dec  sealedDecoder
}

// sealDec returns the counter's decoder, or a fresh one for the
// counterless cold paths (restore, tests).
func (p *probeCounter) sealDec() *sealedDecoder {
	if p == nil {
		return new(sealedDecoder)
	}
	return &p.dec
}

func (p *probeCounter) add(n int) {
	if p == nil {
		return
	}
	if n > probeBuckets {
		n = probeBuckets
	}
	p.hist[n-1]++
}

// keyFields splits an encoding into the slot-comparable form: the
// nfield tag and the bytes actually stored in the slot (the encoding
// itself, or a 4-byte intern index for overflow encodings). Interning
// before the probe keeps comparison a fixed-size byte compare; equal
// encodings always intern to equal indexes.
func (v *visitedSet) keyFields(enc []byte, scratch *[4]byte) (nfield uint64, kb []byte) {
	if len(enc) <= inlineStateBytes {
		return uint64(len(enc)) + 1, enc
	}
	idx, _, added := v.overflow.intern(enc)
	if added > 0 {
		v.resident.Add(added)
		v.bumpPeak()
	}
	binary.LittleEndian.PutUint32(scratch[:], idx)
	return nfieldOverflow, scratch[:]
}

// Claim outcomes.
const (
	claimNew  = iota // state admitted for the first time
	claimDup         // state already visited (possibly re-keyed)
	claimFull        // state budget exhausted; state NOT admitted
)

// claim tries to admit enc with the given parent ref and claim key. h is
// enc's 64-bit FNV-1a hash, computed once by the generating worker: the
// low bits select the shard, the high 32 bits drive the probe sequence
// and serve as the in-cell compare filter.
//
// levelBase is the lowest claim key minted in the current level: an
// existing entry with key < levelBase was claimed in an earlier level
// and can never be re-keyed, so such duplicates resolve entirely
// lock-free. A miss, or a duplicate from the current level (min-key
// takeover), re-probes under the shard lock. The state budget is checked
// before insertion, so the set never holds more than max states.
func (v *visitedSet) claim(enc []byte, h uint64, parent uint32, key uint64,
	hasParent bool, levelBase uint64, pc *probeCounter) (int, uint32) {
	var scratch [4]byte
	nfield, kb := v.keyFields(enc, &scratch)
	shardIdx := uint32(h) & (numShards - 1)
	sh := &v.shards[shardIdx]
	ph := uint32(h >> 32)

	if ip := sh.index.Load(); ip != nil {
		cells := *ip
		mask := uint32(len(cells) - 1)
		i := ph & mask
		for n := 1; ; n++ {
			cell := atomic.LoadUint64(&cells[i])
			if cell == 0 {
				// Not in the live snapshot. A hit against the (immutable,
				// atomics-free) sealed tier is always a prior-level
				// duplicate and resolves here; on a miss the entry is new
				// — the locked re-probe below only needs to recheck the
				// live index, because concurrent inserts are by
				// definition current-level.
				if sh.sealed.count > 0 {
					if _, ok := sh.sealed.find(ph, enc, pc.sealDec(), v.parentIsRef); ok {
						pc.add(n)
						return claimDup, 0
					}
				}
				break // insert under lock
			}
			if uint32(cell>>32) == ph {
				e := sh.entryAt(uint32(cell) - 1)
				m := atomic.LoadUint64(&e.meta)
				if metaNfield(m) == nfield && bytes.Equal(e.data[:len(kb)], kb) {
					if metaKey(m) < levelBase {
						pc.add(n)
						return claimDup, 0
					}
					break // current-level duplicate: takeover under lock
				}
			}
			i = (i + 1) & mask
		}
	}

	sh.mu.Lock()
	cells := v.indexLocked(sh)
	mask := uint32(len(cells) - 1)
	i := ph & mask
	for n := 1; ; n++ {
		cell := atomic.LoadUint64(&cells[i])
		if cell == 0 {
			if v.count.Add(1) > v.max {
				v.count.Add(-1)
				sh.mu.Unlock()
				return claimFull, 0
			}
			ord := sh.ordCount
			if ord >= maxOrdinal {
				sh.mu.Unlock()
				panic(fmt.Sprintf("mc: visited-set shard exceeds %d entries", maxOrdinal))
			}
			e := v.entrySlotLocked(sh, ord-sh.liveBase)
			copy(e.data[:], kb)
			e.parent = parent
			atomic.StoreUint64(&e.meta, packMeta(nfield, hasParent, key))
			sh.ordCount = ord + 1
			// Release-store the cell: the entry above is now visible to
			// any lock-free probe that observes the cell.
			atomic.StoreUint64(&cells[i], uint64(ph)<<32|uint64(ord+1))
			// Growth is driven by the live count: the index only holds
			// entries above liveBase.
			if uint64(sh.ordCount-sh.liveBase)*4 > uint64(len(cells))*3 {
				v.growIndexLocked(sh, cells)
			}
			sh.mu.Unlock()
			pc.add(n)
			return claimNew, makeRef(shardIdx, ord)
		}
		if uint32(cell>>32) == ph {
			e := sh.entryAt(uint32(cell) - 1)
			m := atomic.LoadUint64(&e.meta)
			if metaNfield(m) == nfield && bytes.Equal(e.data[:len(kb)], kb) {
				if k := metaKey(m); k >= levelBase && key < k {
					// Same-level duplicate with a lower key: take over
					// the parent pointer (min-key reduction).
					e.parent = parent
					atomic.StoreUint64(&e.meta, packMeta(nfield, hasParent, key))
				}
				sh.mu.Unlock()
				pc.add(n)
				return claimDup, 0
			}
		}
		i = (i + 1) & mask
	}
}

// find probes for an already-admitted encoding. Only called between
// levels (restore, tests), but uses the same atomic loads as claim so it
// stays race-clean anywhere.
func (v *visitedSet) find(enc []byte, h uint64) (uint32, bool) {
	var scratch [4]byte
	nfield, kb := v.keyFields(enc, &scratch)
	shardIdx := uint32(h) & (numShards - 1)
	sh := &v.shards[shardIdx]
	ip := sh.index.Load()
	if ip == nil {
		return 0, false
	}
	cells := *ip
	mask := uint32(len(cells) - 1)
	ph := uint32(h >> 32)
	for i := ph & mask; ; i = (i + 1) & mask {
		cell := atomic.LoadUint64(&cells[i])
		if cell == 0 {
			if sh.sealed.count > 0 {
				var d sealedDecoder
				if ord, ok := sh.sealed.find(ph, enc, &d, v.parentIsRef); ok {
					return makeRef(shardIdx, ord), true
				}
			}
			return 0, false
		}
		if uint32(cell>>32) == ph {
			e := sh.entryAt(uint32(cell) - 1)
			m := atomic.LoadUint64(&e.meta)
			if metaNfield(m) == nfield && bytes.Equal(e.data[:len(kb)], kb) {
				return makeRef(shardIdx, uint32(cell)-1), true
			}
		}
	}
}

// indexLocked returns the shard's probe index. Caller holds sh.mu.
func (v *visitedSet) indexLocked(sh *flatShard) []uint64 {
	return *sh.index.Load()
}

// growIndexLocked swaps in a larger probe index, rehashing only the
// 8-byte cells. Caller holds sh.mu. The old index stays valid for
// concurrent lock-free probes until they re-load the pointer; a stale
// probe can only miss recent inserts, which the locked re-probe
// corrects.
func (v *visitedSet) growIndexLocked(sh *flatShard, cells []uint64) {
	newLen := len(cells) * 2
	if newLen < growDoubleAt {
		newLen = len(cells) * 4
	}
	next := make([]uint64, newLen)
	// Both generations are live during the rehash; peak captures that.
	v.resident.Add(int64(newLen * 8))
	v.bumpPeak()
	mask := uint32(newLen - 1)
	for _, cell := range cells {
		if cell == 0 {
			continue
		}
		i := uint32(cell>>32) & mask
		for next[i] != 0 {
			i = (i + 1) & mask
		}
		next[i] = cell
	}
	sh.index.Store(&next)
	// The very first index lives in the set-wide shared backing array,
	// which stays resident for the set's lifetime; only individually
	// allocated generations are released by the swap.
	if len(cells) > initialIndexCells {
		v.resident.Add(int64(-len(cells) * 8))
	}
}

// entrySlotLocked returns the slot for the next live position
// (ordinal − liveBase), allocating its chunk on first touch. Caller
// holds sh.mu.
func (v *visitedSet) entrySlotLocked(sh *flatShard, pos uint32) *entry {
	c, off := chunkOf(pos)
	if off == 0 && sh.chunks[c].Load() == nil {
		chunk := make([]entry, entryChunkBase<<c)
		v.resident.Add(int64(len(chunk)) * 32)
		v.bumpPeak()
		sh.chunks[c].Store(&chunk)
	}
	return &(*sh.chunks[c].Load())[off]
}

// loadFactor is the admitted-state count over total probe cells, both
// tiers.
func (v *visitedSet) loadFactor() float64 {
	cells := 0
	for i := range v.shards {
		if ip := v.shards[i].index.Load(); ip != nil {
			cells += len(*ip)
		}
		cells += len(v.shards[i].sealed.index)
	}
	if cells == 0 {
		return 0
	}
	return float64(v.count.Load()) / float64(cells)
}

// seal migrates batch — the refs of the level that just finished
// expanding, in the engine's deterministic key order — out of the live
// slots into each shard's sealed tier, compacts the surviving live
// entries (the next frontier's claims) down to position 0, and
// rewrites every ref the caller still holds (the slices passed as
// rewrite) to the post-seal ordinal space.
//
// Called only at level barriers (or single-threaded restore): workers
// are quiescent, so plain loads and stores are safe, and the next
// level's spawns publish the new tier through the barrier's
// happens-before edge.
//
// Determinism: the batch's per-shard content and order are a pure
// function of the level's key-sorted frontier, so arena bytes, index
// capacities, chunk frees and the resident counter all come out
// identical at every worker count.
func (v *visitedSet) seal(batch []uint32, rewrite ...[]uint32) {
	if len(batch) == 0 {
		return
	}
	// Group the batch by shard, preserving batch (key) order: group
	// position i becomes sealed ordinal oldBase+i.
	for s := range v.sealGroups {
		v.sealGroups[s] = v.sealGroups[s][:0]
	}
	for _, r := range batch {
		s := r & (numShards - 1)
		v.sealGroups[s] = append(v.sealGroups[s], r>>shardBits)
	}

	// Remap tables for every shard with batch members: old live
	// position → new ordinal. Batch members take the next sealed
	// ordinals in batch order; survivors keep their relative arrival
	// order above them. Built for all shards before any entry moves,
	// because parent refs cross shards.
	var oldBase [numShards]uint32
	for s := range v.shards {
		sh := &v.shards[s]
		oldBase[s] = sh.liveBase
		g := v.sealGroups[s]
		rm := v.sealRemap[s][:0]
		if len(g) > 0 {
			liveCount := sh.ordCount - sh.liveBase
			for i := uint32(0); i < liveCount; i++ {
				rm = append(rm, ^uint32(0))
			}
			for i, ord := range g {
				rm[ord-sh.liveBase] = sh.liveBase + uint32(i)
			}
			next := sh.liveBase + uint32(len(g))
			for p := range rm {
				if rm[p] == ^uint32(0) {
					rm[p] = next
					next++
				}
			}
		}
		v.sealRemap[s] = rm
	}
	remapRef := func(r uint32) uint32 {
		s := r & (numShards - 1)
		rm := v.sealRemap[s]
		if len(rm) == 0 {
			return r // shard untouched this seal
		}
		o := r >> shardBits
		if o < oldBase[s] {
			return r // already sealed
		}
		return rm[o-oldBase[s]]<<shardBits | s
	}

	// The scratch above is part of the set's footprint while it lives;
	// its capacity only grows, so account the delta.
	var sb int64
	for s := range v.sealGroups {
		sb += int64(cap(v.sealGroups[s]))*4 + int64(cap(v.sealRemap[s]))*4
	}
	if sb != v.scratchBytes {
		v.resident.Add(sb - v.scratchBytes)
		v.scratchBytes = sb
		v.bumpPeak()
	}

	for s := range v.shards {
		sh := &v.shards[s]
		g := v.sealGroups[s]
		liveCount := sh.ordCount - oldBase[s]
		if liveCount == 0 {
			continue
		}
		ss := &sh.sealed

		// Encode the batch into the arena and quotiented index. This
		// reads live slots, so it runs before compaction moves them.
		arenaBefore := int64(len(ss.blob)) + int64(len(ss.restarts)*4)
		for _, ord := range g {
			e := sh.entryAt(ord)
			enc := v.encOfLive(e, e.meta)
			var pw uint64
			if v.parentIsRef {
				if e.meta&hasParentBit != 0 {
					pw = uint64(remapRef(e.parent)) + 1
				}
			} else {
				pw = uint64(e.parent) << 1
				if e.meta&hasParentBit != 0 {
					pw |= 1
				}
			}
			if ss.indexNeedsGrow() {
				added, freed := ss.indexGrow(v.parentIsRef, &v.sealDec)
				v.resident.Add(added)
				v.bumpPeak()
				v.resident.Add(-freed)
			}
			h := hashBytes(enc)
			ss.appendEntry(enc, pw, v.parentIsRef)
			ss.indexInsert(uint32(h>>32), ss.count-1)
		}
		v.resident.Add(int64(len(ss.blob)) + int64(len(ss.restarts)*4) - arenaBefore)
		v.bumpPeak()

		// Compact survivors down to position 0 (ascending, so dest ≤
		// src) and rewrite their parent refs into the new space —
		// needed even in shards that sealed nothing, since parents
		// cross shards.
		nSurv := liveCount - uint32(len(g))
		if len(g) > 0 {
			rm := v.sealRemap[s]
			sealedEnd := oldBase[s] + uint32(len(g))
			dst := uint32(0)
			for p := uint32(0); p < liveCount; p++ {
				if rm[p] < sealedEnd {
					continue // migrated to the sealed tier
				}
				if dst != p {
					*sh.entryAtPos(dst) = *sh.entryAtPos(p)
				}
				dst++
			}
		}
		if v.parentIsRef {
			for p := uint32(0); p < nSurv; p++ {
				e := sh.entryAtPos(p)
				if e.meta&hasParentBit != 0 {
					e.parent = remapRef(e.parent)
				}
			}
		}

		// Release entry chunks beyond the survivors' needs. Chunk 0
		// lives in the set-wide shared backing and is never freed.
		needChunks := 1
		if nSurv > 0 {
			c, _ := chunkOf(nSurv - 1)
			needChunks = c + 1
		}
		for c := needChunks; c < maxEntryChunks; c++ {
			p := sh.chunks[c].Load()
			if p == nil {
				break
			}
			v.resident.Add(-int64(len(*p)) * 32)
			sh.chunks[c].Store(nil)
		}

		// Rebuild the live index over the survivors. Capacity replays
		// the insert-driven growth schedule from the initial size, so
		// it is a pure function of the survivor count — the same
		// capacity a fresh set would reach, keeping resident bytes
		// deterministic (and matching a checkpoint reader's replay).
		newCells := initialIndexCells
		for uint64(nSurv)*4 > uint64(newCells)*3 {
			if newCells < growDoubleAt {
				newCells *= 4
			} else {
				newCells *= 2
			}
		}
		oldIdx := *sh.index.Load()
		var cells []uint64
		if len(oldIdx) == newCells {
			cells = oldIdx
			for i := range cells {
				cells[i] = 0
			}
		} else {
			cells = make([]uint64, newCells)
			v.resident.Add(int64(newCells) * 8)
			v.bumpPeak()
			if len(oldIdx) > initialIndexCells {
				v.resident.Add(-int64(len(oldIdx)) * 8)
			}
		}
		newBase := oldBase[s] + uint32(len(g))
		mask := uint32(newCells - 1)
		for p := uint32(0); p < nSurv; p++ {
			e := sh.entryAtPos(p)
			h := hashBytes(v.encOfLive(e, e.meta))
			i := uint32(h>>32) & mask
			for cells[i] != 0 {
				i = (i + 1) & mask
			}
			cells[i] = uint64(uint32(h>>32))<<32 | uint64(newBase+p+1)
		}
		sh.index.Store(&cells)
		sh.liveBase = newBase
	}

	// Finally, rewrite every ref array the caller still holds.
	for _, arr := range rewrite {
		for i, r := range arr {
			arr[i] = remapRef(r)
		}
	}
}
