package mc

import (
	"reflect"
	"testing"
)

// oracleResult is what the reference checker reports — the fields the
// engine guarantees are byte-identical for any worker count.
type oracleResult struct {
	Holds               bool
	StatesExplored      int
	TransitionsExplored int
	Depth               int
	Counterexample      []State
}

// stringOracleCheck is an independent reference implementation of the
// engine's contract: a plain serial breadth-first sweep over a
// string-keyed visited map, examining successors strictly left to right
// and stopping at the first violation. It shares no code with the packed
// engine — no stateKey, no shards, no claim keys — so agreement between
// the two is evidence the packed visited set preserved semantics, not
// just self-consistency.
func stringOracleCheck(m Model, trInv TransitionInvariant, stInv StateInvariant) oracleResult {
	type rec struct {
		parent    State
		hasParent bool
	}
	visited := map[State]rec{}
	trace := func(s State) []State {
		var rev []State
		for {
			rev = append(rev, s)
			r := visited[s]
			if !r.hasParent {
				break
			}
			s = r.parent
		}
		out := make([]State, len(rev))
		for i := range rev {
			out[len(rev)-1-i] = rev[i]
		}
		return out
	}

	res := oracleResult{Holds: true}
	var frontier []State
	for _, s := range m.Initial() {
		if _, ok := visited[s]; ok {
			continue
		}
		visited[s] = rec{}
		if stInv != nil && !stInv(s) {
			res.Holds = false
			res.StatesExplored = len(visited)
			res.Counterexample = []State{s}
			return res
		}
		frontier = append(frontier, s)
	}
	for depth := 0; len(frontier) > 0; depth++ {
		var next []State
		for _, s := range frontier {
			for _, t := range m.Successors(s) {
				res.TransitionsExplored++
				if trInv != nil && !trInv(s, t) {
					res.Holds = false
					res.Depth = depth + 1
					res.StatesExplored = len(visited)
					res.Counterexample = append(trace(s), t)
					return res
				}
				if _, ok := visited[t]; ok {
					continue
				}
				visited[t] = rec{parent: s, hasParent: true}
				if stInv != nil && !stInv(t) {
					res.Holds = false
					res.Depth = depth + 1
					res.StatesExplored = len(visited)
					res.Counterexample = trace(t)
					return res
				}
				next = append(next, t)
			}
		}
		frontier = next
		if len(frontier) > 0 {
			res.Depth = depth + 1
		}
	}
	res.StatesExplored = len(visited)
	return res
}

// compareWithOracle runs the engine at workers 1/2/8 and asserts every
// result matches the string-keyed serial oracle exactly.
func compareWithOracle(t *testing.T, m Model, trInv TransitionInvariant, stInv StateInvariant) {
	t.Helper()
	want := stringOracleCheck(m, trInv, stInv)
	for _, w := range workerCounts {
		var res Result
		var err error
		if trInv != nil {
			res, err = CheckTransitionInvariant(m, trInv, Options{Workers: w})
		} else {
			res, err = CheckInvariant(m, stInv, Options{Workers: w})
		}
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got := oracleResult{
			Holds:               res.Holds,
			StatesExplored:      res.StatesExplored,
			TransitionsExplored: res.TransitionsExplored,
			Depth:               res.Depth,
			Counterexample:      res.Counterexample,
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: engine %+v\n  oracle %+v", w, got, want)
		}
	}
}

// TestPackedEngineMatchesStringOracleDiamond pits the packed-key engine
// against the string-keyed oracle on the diamond lattice — the fixture
// where same-level parents race for every interior state — for a holding
// invariant, a transition violation and a state violation.
func TestPackedEngineMatchesStringOracleDiamond(t *testing.T) {
	t.Run("holds", func(t *testing.T) {
		compareWithOracle(t, diamondModel{k: 24},
			func(from, to State) bool { return true }, nil)
	})
	t.Run("transition-violation", func(t *testing.T) {
		compareWithOracle(t, diamondModel{k: 24},
			func(from, to State) bool { return to != encodeXY(13, 11) }, nil)
	})
	t.Run("state-violation", func(t *testing.T) {
		compareWithOracle(t, diamondModel{k: 24}, nil,
			func(s State) bool { return s != encodeXY(7, 15) })
	})
}

// overflowModel is a chain whose encodings exceed the stateKey inline
// capacity, forcing every state through the intern-table overflow path.
type overflowModel struct{ n int }

func (m overflowModel) pad(i int) State {
	b := make([]byte, inlineStateBytes+8)
	for j := range b {
		b[j] = byte('a' + i%26)
	}
	b[0] = byte(i >> 8)
	b[1] = byte(i)
	return State(b)
}

func (m overflowModel) Initial() []State { return []State{m.pad(0)} }

func (m overflowModel) Successors(s State) []State {
	i := int(s[0])<<8 | int(s[1])
	if i >= m.n {
		return nil
	}
	return []State{m.pad(i + 1), m.pad(i)} // forward edge plus a self-loop
}

// TestPackedEngineMatchesStringOracleOverflow exercises the overflow
// (interned) key representation end to end, including the counterexample
// path.
func TestPackedEngineMatchesStringOracleOverflow(t *testing.T) {
	m := overflowModel{n: 40}
	bad := m.pad(33)
	t.Run("holds", func(t *testing.T) {
		compareWithOracle(t, m, func(from, to State) bool { return true }, nil)
	})
	t.Run("transition-violation", func(t *testing.T) {
		compareWithOracle(t, m, func(from, to State) bool { return to != bad }, nil)
	})
}
