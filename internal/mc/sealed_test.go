package mc

// Tests for the sealed visited-set tier (sealed.go + visitedSet.seal):
// the delta-compressed entry arena, the quotiented probe index, the
// level-boundary migration itself, the resident-byte audit, and the v5
// checkpoint format that serializes the tier directly.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// sealFixtureState builds a deterministic ~16-byte encoding for id with
// some shared prefix structure (realistic for packed model states, and
// what the delta codec exploits).
func sealFixtureState(level, id int) []byte {
	return []byte(fmt.Sprintf("L%03d/s%08d", level, id))
}

// TestSealMigrationRoundTrip drives the visited set exactly as the
// engine does — claim a level under a base, seal the previous level,
// repeat — and verifies after every boundary that each state (sealed or
// live) still resolves by find, round-trips its bytes, keeps its parent
// chain, and reports duplicate claims as duplicates.
func TestSealMigrationRoundTrip(t *testing.T) {
	const levels, perLevel = 12, 90
	v := newVisitedSet(levels*perLevel + 1)
	var pc probeCounter

	type rec struct {
		enc    []byte
		parent int // index into all, -1 = none
	}
	var all []rec
	allRefs := []uint32{}
	base := uint64(1)
	var prevLevel, curLevel []uint32

	for l := 0; l < levels; l++ {
		for i := 0; i < perLevel; i++ {
			enc := sealFixtureState(l, i*i%977)
			parent := -1
			var pref uint32
			hasParent := false
			if l > 0 {
				parent = (l-1)*perLevel + i%perLevel
				pref = allRefs[parent]
				hasParent = true
			}
			st, ref := v.claim(enc, hashBytes(enc), pref, base+uint64(i), hasParent, base, &pc)
			if st != claimNew {
				t.Fatalf("level %d state %d: claim = %d, want claimNew", l, i, st)
			}
			all = append(all, rec{enc: enc, parent: parent})
			allRefs = append(allRefs, ref)
			curLevel = append(curLevel, ref)
		}
		// Level boundary: the just-expanded previous level migrates to
		// the sealed tier; every ref the test still holds is rewritten.
		if len(prevLevel) > 0 {
			v.seal(prevLevel, allRefs, curLevel)
		}
		prevLevel = curLevel
		curLevel = nil
		base += uint64(perLevel) << keySuccBits

		for j, r := range all {
			ref := allRefs[j]
			if got := v.bytesOf(ref); !bytes.Equal(got, r.enc) {
				t.Fatalf("after %d seals: ref %d reads %q, want %q", l, j, got, r.enc)
			}
			fref, ok := v.find(r.enc, hashBytes(r.enc))
			if !ok || fref != ref {
				t.Fatalf("after %d seals: find(%q) = (%d,%v), want (%d,true)", l, r.enc, fref, ok, ref)
			}
			pref, has := v.parentOf(ref)
			if has != (r.parent >= 0) {
				t.Fatalf("after %d seals: ref %d hasParent=%v, want %v", l, j, has, r.parent >= 0)
			}
			if has && pref != allRefs[r.parent] {
				t.Fatalf("after %d seals: ref %d parent %d, want %d", l, j, pref, allRefs[r.parent])
			}
			st, _ := v.claim(r.enc, hashBytes(r.enc), 0, base, false, base, &pc)
			if st != claimDup {
				t.Fatalf("after %d seals: re-claim of %q = %d, want claimDup", l, r.enc, st)
			}
		}
	}

	states, arena, index := v.sealedStats()
	if want := int64((levels - 1) * perLevel); states != want {
		t.Fatalf("sealed states = %d, want %d", states, want)
	}
	if arena <= 0 || index <= 0 {
		t.Fatalf("sealed arena/index bytes = %d/%d, want positive", arena, index)
	}
	// The codec must beat raw storage on this self-similar fixture.
	rawBytes := states * int64(len(sealFixtureState(0, 0)))
	if arena >= rawBytes {
		t.Errorf("sealed arena %dB >= raw %dB: delta compression ineffective", arena, rawBytes)
	}
}

// sealedCollisionState searches for an encoding whose hash collides
// with the target's (shard, initial index cell, quotient remainder)
// triple — the full signature the quotiented index stores. Confirms
// must fall through to the arena decode to tell such states apart.
func sealedCollisionState(id int, pos, rem uint32) []byte {
	for nonce := 0; ; nonce++ {
		enc := []byte(fmt.Sprintf("q%03d/%d", id, nonce))
		h := hashBytes(enc)
		ph := uint32(h >> 32)
		if uint32(h)&(numShards-1) == 0 && ph>>sealedRemShift == rem && ph&(sealedInitialCells-1) == pos {
			return enc
		}
	}
}

// TestSealedIndexCollisionAdversary seals a batch of states that all
// share one shard, one initial probe cell and one stored remainder.
// Every lookup — hit or miss — survives only through the full-key
// confirm, so a false accept or probe-chain break shows up immediately.
func TestSealedIndexCollisionAdversary(t *testing.T) {
	const n = 20 // stays below the 32-cell index's growth threshold
	v := newVisitedSet(n + 1)
	var pc probeCounter
	encs := make([][]byte, n)
	refs := make([]uint32, n)
	for i := range encs {
		encs[i] = sealedCollisionState(i, 7, 21)
		st, ref := v.claim(encs[i], hashBytes(encs[i]), 0, uint64(i+1), false, 1, &pc)
		if st != claimNew {
			t.Fatalf("claim %d = %d, want claimNew", i, st)
		}
		refs[i] = ref
	}
	v.seal(refs, refs)
	if states, _, _ := v.sealedStats(); states != n {
		t.Fatalf("sealed %d states, want %d", states, n)
	}
	for i := range encs {
		ref, ok := v.find(encs[i], hashBytes(encs[i]))
		if !ok || ref != refs[i] {
			t.Fatalf("find(%d) = (%d,%v), want (%d,true)", i, ref, ok, refs[i])
		}
		if got := v.bytesOf(refs[i]); !bytes.Equal(got, encs[i]) {
			t.Fatalf("ref %d reads %q, want %q", i, got, encs[i])
		}
	}
	// A state with the same (shard, cell, remainder) signature that was
	// never inserted must not be accepted by the quotient filter.
	ghost := sealedCollisionState(999, 7, 21)
	if ref, ok := v.find(ghost, hashBytes(ghost)); ok {
		t.Fatalf("find(ghost) = (%d,true), want miss", ref)
	}
	if st, _ := v.claim(ghost, hashBytes(ghost), 0, 100, false, 100, &pc); st != claimNew {
		t.Fatalf("claim(ghost) = %d, want claimNew", st)
	}
}

// FuzzSealedTier feeds pseudo-random state populations — arbitrary
// lengths (inline and intern-overflow), shared prefixes, random parent
// edges, random seal batch sizes — through claim/seal and cross-checks
// the sealed tier against a plain map oracle.
func FuzzSealedTier(f *testing.F) {
	f.Add(uint64(1), uint8(3), uint8(40))
	f.Add(uint64(0xdeadbeef), uint8(16), uint8(1))
	f.Add(uint64(42), uint8(24), uint8(200))
	f.Fuzz(func(t *testing.T, seed uint64, maxLen uint8, batch uint8) {
		if maxLen == 0 {
			maxLen = 1
		}
		if batch == 0 {
			batch = 1
		}
		const n = 600
		v := newVisitedSet(n + 1)
		var pc probeCounter

		rng := seed
		next := func() uint64 { // splitmix64
			rng += 0x9e3779b97f4a7c15
			z := rng
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4b9fe
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return z ^ (z >> 31)
		}

		type rec struct {
			enc    []byte
			parent int
		}
		var all []rec
		var refs []uint32
		var pending []uint32 // claimed since the last seal
		oracle := map[string]int{}
		key := uint64(1)

		for i := 0; i < n; i++ {
			l := int(next()%uint64(maxLen)) + 1
			enc := make([]byte, l)
			// Shared-prefix populations stress the delta codec; fully
			// random ones stress the restart path.
			copy(enc, "prefix/prefix/prefix/prefix")
			for j := l - 1; j >= 0 && j >= l-3; j-- {
				enc[j] = byte(next())
			}
			if _, dup := oracle[string(enc)]; dup {
				continue
			}
			parent := -1
			var pref uint32
			hasParent := false
			if len(refs) > 0 && next()%4 != 0 {
				parent = int(next() % uint64(len(refs)))
				pref = refs[parent]
				hasParent = true
			}
			st, ref := v.claim(enc, hashBytes(enc), pref, key, hasParent, key, &pc)
			if st != claimNew {
				t.Fatalf("claim %q = %d, want claimNew", enc, st)
			}
			key++
			oracle[string(enc)] = len(all)
			all = append(all, rec{enc: enc, parent: parent})
			refs = append(refs, ref)
			pending = append(pending, ref)
			if len(pending) >= int(batch) {
				v.seal(pending, refs)
				pending = pending[:0]
			}
		}
		if len(pending) > 0 {
			v.seal(pending, refs)
		}

		states, _, _ := v.sealedStats()
		if states != int64(len(all)) {
			t.Fatalf("sealed %d states, want %d", states, len(all))
		}
		for j, r := range all {
			ref, ok := v.find(r.enc, hashBytes(r.enc))
			if !ok || ref != refs[j] {
				t.Fatalf("find(%q) = (%d,%v), want (%d,true)", r.enc, ref, ok, refs[j])
			}
			if got := v.bytesOf(ref); !bytes.Equal(got, r.enc) {
				t.Fatalf("ref %d reads %q, want %q", j, got, r.enc)
			}
			pref, has := v.parentOf(ref)
			if has != (r.parent >= 0) || (has && pref != refs[r.parent]) {
				t.Fatalf("ref %d parent = (%d,%v), want (%v,%v)", j, pref, has, r.parent, r.parent >= 0)
			}
			if st, _ := v.claim(r.enc, hashBytes(r.enc), 0, key, false, key, &pc); st != claimDup {
				t.Fatalf("re-claim of %q = %d, want claimDup", r.enc, st)
			}
		}
		// The checked decoder must sweep every shard cleanly end to end.
		var d sealedDecoder
		maxEnc := int(maxLen) + 1
		for s := range v.shards {
			ss := &v.shards[s].sealed
			if ss.count == 0 {
				continue
			}
			d.startAt(ss, 0, v.parentIsRef)
			for d.ord < ss.count {
				if err := d.stepChecked(maxEnc); err != nil {
					t.Fatalf("shard %d ord %d: %v", s, d.ord, err)
				}
			}
			if d.off != len(ss.blob) {
				t.Fatalf("shard %d: decode consumed %d of %d blob bytes", s, d.off, len(ss.blob))
			}
		}
	})
}

// TestSealNoSealEquivalence runs the same searches with the sealed tier
// on and off: verdict, counts, depth and the full counterexample must
// be identical, and the sealed run must not exceed the unsealed peak.
func TestSealNoSealEquivalence(t *testing.T) {
	cases := []struct {
		name string
		run  func(Options) (Result, error)
		viol bool
		// Fixed per-shard overheads (seal scratch, quotient index)
		// only amortize on real populations; tiny early-stop searches
		// skip the peak comparison.
		wantSmaller bool
	}{
		{"collision-holds", func(o Options) (Result, error) {
			return CheckTransitionInvariant(collisionModel{n: 3000},
				func(from, to State) bool { return true }, o)
		}, false, true},
		{"diamond-violation", func(o Options) (Result, error) {
			return CheckTransitionInvariant(diamondModel{k: 30},
				func(from, to State) bool { return to != encodeXY(17, 17) }, o)
		}, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sealedStats, plainStats Stats
			for _, w := range workerCounts {
				sealedRes, err1 := tc.run(Options{Workers: w, Stats: func(s Stats) { sealedStats = s }})
				plainRes, err2 := tc.run(Options{Workers: w, NoSeal: true, Stats: func(s Stats) { plainStats = s }})
				if err1 != nil || err2 != nil {
					t.Fatalf("workers=%d: errs %v / %v", w, err1, err2)
				}
				if !equalResults(sealedRes, plainRes) {
					t.Fatalf("workers=%d: sealed %+v != unsealed %+v", w, sealedRes, plainRes)
				}
				if sealedRes.Holds == tc.viol {
					t.Fatalf("workers=%d: verdict %v, want violation=%v", w, sealedRes.Holds, tc.viol)
				}
				if sealedStats.SealedStates == 0 {
					t.Fatalf("workers=%d: sealed run reports no sealed states", w)
				}
				if plainStats.SealedStates != 0 {
					t.Fatalf("workers=%d: NoSeal run reports %d sealed states", w, plainStats.SealedStates)
				}
				if tc.wantSmaller && sealedStats.PeakResidentBytes > plainStats.PeakResidentBytes {
					t.Errorf("workers=%d: sealed peak %d > unsealed peak %d", w,
						sealedStats.PeakResidentBytes, plainStats.PeakResidentBytes)
				}
			}
		})
	}
}

// TestResidentAccountingMemStats cross-checks the visited set's
// self-reported resident bytes against the Go heap: claim and seal a
// population large enough to dwarf fixture noise, then require the
// counted footprint to sit within tolerance of the measured growth.
// Catches both double-counting (counted >> measured) and unaccounted
// structures (counted << measured).
func TestResidentAccountingMemStats(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-MB allocation cross-check")
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	const n = 120000
	v := newVisitedSet(n + 1)
	var pc probeCounter
	var enc [24]byte // > inlineStateBytes: every claim exercises the intern table too
	var pending []uint32
	for i := 0; i < n; i++ {
		b := enc[:16+i%9]
		copy(b, "memaudit")
		b[8] = byte(i)
		b[9] = byte(i >> 8)
		b[10] = byte(i >> 16)
		b[11] = byte(i % 7)
		st, ref := v.claim(b, hashBytes(b), 0, uint64(i+1), false, 1, &pc)
		if st != claimNew {
			t.Fatalf("claim %d = %d, want claimNew", i, st)
		}
		pending = append(pending, ref)
		if len(pending) == 4096 {
			v.seal(pending)
			pending = pending[:0]
		}
	}
	v.seal(pending)

	runtime.GC()
	runtime.ReadMemStats(&after)
	measured := int64(after.HeapInuse) - int64(before.HeapInuse)
	counted := v.resident.Load()
	runtime.KeepAlive(v)

	if counted <= 0 || measured <= 0 {
		t.Fatalf("degenerate measurement: counted=%d measured=%d", counted, measured)
	}
	// The one documented approximation is arena slack (blob counted by
	// len, allocated by cap: ≤ 25% + a 4KiB floor), so counted may sit
	// below measured; HeapInuse granularity and test-held slices push
	// the other way. Either way the two must stay the same magnitude.
	ratio := float64(counted) / float64(measured)
	if ratio < 0.5 || ratio > 1.5 {
		t.Errorf("resident accounting %d vs heap growth %d (ratio %.2f) outside [0.5, 1.5]",
			counted, measured, ratio)
	}
}

// interruptSealed runs a diamond search canceled after cutAt levels,
// flushing a checkpoint to path, and returns the checkpoint file bytes.
func interruptSealed(t *testing.T, k, cutAt int, path string, noSeal bool) []byte {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := CheckTransitionInvariant(diamondModel{k: k},
		func(from, to State) bool { return true },
		Options{
			Context:        ctx,
			NoSeal:         noSeal,
			CheckpointPath: path,
			Progress:       cancelAfterLevels(cutAt, cancel),
		})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run: got %v, want ErrInterrupted", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCheckpointV5RoundTrip: an interrupted sealed search writes the v5
// format, and ReadCheckpoint materializes it to exactly the classic
// checkpoint an unsealed run would have written at the same cut.
func TestCheckpointV5RoundTrip(t *testing.T) {
	dir := t.TempDir()
	p5 := filepath.Join(dir, "cp5")
	p4 := filepath.Join(dir, "cp4")
	d5 := interruptSealed(t, 40, 10, p5, false)
	d4 := interruptSealed(t, 40, 10, p4, true)

	if v := d5[len(checkpointMagic)]; uint64(v) != checkpointVersionSealed {
		t.Fatalf("sealed checkpoint version = %d, want %d", v, checkpointVersionSealed)
	}
	if v := d4[len(checkpointMagic)]; uint64(v) != checkpointVersion {
		t.Fatalf("unsealed checkpoint version = %d, want %d", v, checkpointVersion)
	}
	if len(d5) >= len(d4) {
		t.Errorf("v5 file %dB not smaller than v4 %dB", len(d5), len(d4))
	}

	got, err := ReadCheckpoint(p5)
	if err != nil {
		t.Fatalf("read v5: %v", err)
	}
	want, err := ReadCheckpoint(p4)
	if err != nil {
		t.Fatalf("read v4: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("materialized v5 differs from classic v4:\n got %+v\nwant %+v", got, want)
	}
}

// TestCheckpointV5CorruptionDetected: every single-byte flip of a v5
// file must be rejected.
func TestCheckpointV5CorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp")
	data := interruptSealed(t, 14, 6, path, false)
	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCheckpoint(path); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("flip at byte %d: got %v, want ErrBadCheckpoint", i, err)
		}
	}
	for _, n := range []int{0, 1, len(checkpointMagic), len(data) / 2, len(data) - 1} {
		if err := os.WriteFile(path, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCheckpoint(path); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrBadCheckpoint", n, err)
		}
	}
}

// TestSealedSnapStructuralCorruption mutates a parsed v5 snapshot past
// the checksum — a truncated arena, a parent word aimed outside the
// sealed tier, a live key at or above the minted base — and requires
// both consumers (materialize for v4-class readers, restoreSealed for
// native resume) to reject rather than mis-decode.
func TestSealedSnapStructuralCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp")
	interruptSealed(t, 20, 8, path, false)

	parse := func() *sealedSnap {
		t.Helper()
		version, r, err := readCheckpointEnvelope(path)
		if err != nil || version != checkpointVersionSealed {
			t.Fatalf("envelope: version=%d err=%v", version, err)
		}
		s5, err := parseSealedSnap(r)
		if err != nil {
			t.Fatal(err)
		}
		return s5
	}

	check := func(name string, mutate func(*sealedSnap)) {
		s5 := parse()
		mutate(s5)
		if _, err := s5.materialize(); err == nil {
			t.Errorf("%s: materialize accepted the corruption", name)
		}
		v := newVisitedSet(1 << 20)
		if _, err := v.restoreSealed(s5); err == nil {
			t.Errorf("%s: restoreSealed accepted the corruption", name)
		}
	}

	check("truncated-blob", func(s5 *sealedSnap) {
		for i := range s5.shards {
			if n := len(s5.shards[i].blob); n > 1 {
				s5.shards[i].blob = s5.shards[i].blob[:n-1]
				return
			}
		}
		t.Fatal("fixture has no sealed blob to truncate")
	})
	check("dangling-parent", func(s5 *sealedSnap) {
		for i := range s5.live {
			if s5.live[i].pw != 0 {
				s5.live[i].pw = uint64(makeRef(0, uint32(s5.shards[0].count))) + 1
				return
			}
		}
		t.Fatal("fixture has no live parent to corrupt")
	})
	// Live keys must stay under the recorded nextBase; only restoreSealed
	// enforces this (materialize drops keys by design).
	s5 := parse()
	if len(s5.live) == 0 {
		t.Fatal("fixture has no live entries")
	}
	s5.live[0].key = s5.nextBase
	v := newVisitedSet(1 << 20)
	if _, err := v.restoreSealed(s5); err == nil {
		t.Error("key-past-base: restoreSealed accepted the corruption")
	}
}

// TestResumeNoSealV5Refused: a v5 checkpoint cannot resume with sealing
// disabled (the restored tier would be unreachable), with a message
// naming the flag; the checkpoint must survive the refusal. The inverse
// direction — a NoSeal run's v4 file resumed by a sealing engine — must
// work and match the clean result.
func TestResumeNoSealV5Refused(t *testing.T) {
	m := diamondModel{k: 40}
	inv := func(from, to State) bool { return true }
	path := filepath.Join(t.TempDir(), "cp")
	interruptSealed(t, 40, 10, path, false)

	_, err := CheckTransitionInvariant(m, inv, Options{NoSeal: true, ResumePath: path})
	if err == nil || !strings.Contains(err.Error(), "no-seal") {
		t.Fatalf("v5 resume under NoSeal: got %v, want a no-seal refusal", err)
	}
	if _, serr := os.Stat(path); serr != nil {
		t.Fatalf("checkpoint gone after refused resume: %v", serr)
	}

	clean, err := CheckTransitionInvariant(m, inv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	interruptSealed(t, 40, 10, path, true) // v4 file
	resumed, err := CheckTransitionInvariant(m, inv, Options{ResumePath: path, CheckpointPath: path})
	if err != nil {
		t.Fatalf("sealed engine resuming v4: %v", err)
	}
	if !equalResults(resumed, clean) {
		t.Fatalf("v4-resumed %+v differs from clean %+v", resumed, clean)
	}
}

// TestCheckpointLegacyV4SealedResume hand-builds a version-4 file —
// byte-for-byte what a pre-sealed-tier build would have written — from
// a mid-search snapshot and proves the sealed engine restores it (the
// restored states migrate at the first boundary) to the clean result,
// at every worker count.
func TestCheckpointLegacyV4SealedResume(t *testing.T) {
	m := diamondModel{k: 40}
	inv := func(from, to State) bool { return true }
	clean, err := CheckTransitionInvariant(m, inv, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cp")
	interruptSealed(t, 40, 10, path, false)
	cp, err := ReadCheckpoint(path) // materialize the v5 file...
	if err != nil {
		t.Fatal(err)
	}
	// ...and re-serialize it through the v4 writer, as a legacy build
	// resuming this search would have left it.
	if err := WriteCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := data[len(checkpointMagic)]; uint64(v) != checkpointVersion {
		t.Fatalf("legacy fixture version = %d, want %d", v, checkpointVersion)
	}
	for _, w := range workerCounts {
		resumed, err := CheckTransitionInvariant(m, inv, Options{Workers: w, ResumePath: path})
		if err != nil {
			t.Fatalf("workers=%d: legacy v4 resume: %v", w, err)
		}
		if !equalResults(resumed, clean) {
			t.Fatalf("workers=%d: resumed %+v differs from clean %+v", w, resumed, clean)
		}
	}
}
