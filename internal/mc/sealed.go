package mc

// The sealed tier: compact immutable storage for visited states whose
// BFS level has finished expanding.
//
// The level-synchronous engine guarantees that an entry becomes
// immutable the moment its own level's barrier completes: a min-key
// takeover can only rewrite entries claimed in the *current* level, and
// a level's entries are current exactly while that level's successors
// are being generated. After that, only three things are ever read
// again — membership (duplicate probes), the parent ref (trace
// reconstruction) and the encoding itself (trace materialization,
// checkpoints). None of those needs the 32-byte live slot or the
// 8-byte probe cell, so at each level boundary the just-expanded
// frontier migrates out of the live log into this tier:
//
//   - blob: a delta-compressed encoding arena. Entries are appended in
//     final-claim-key order (the frontier order the engine already
//     computed — no extra sort), and successive states in one shard
//     then differ in only a handful of bytes, which an XOR byte-mask
//     records far more compactly than prefix sharing would: the packed
//     codec scatters a field flip across the encoding, defeating
//     front-coding, while a diff mask pays exactly one bit per byte
//     plus the changed bytes (~7.6 B/state on the 6-node set vs 18
//     raw). Every sealedRestartEvery-th ordinal restarts the chain with
//     a full encoding so random access decodes a bounded walk.
//   - restarts: the blob offset of each restart record, so decoding
//     ordinal q starts at restarts[q/16] and applies at most 15 deltas.
//   - index: a quotiented probe table of uint32 cells
//     [remainder:6 | ordinal+1:26]. The live index needs 8-byte cells
//     because its 32-bit hash fragment is the only cheap confirm; here
//     a remainder hit is confirmed by decoding the candidate entry and
//     comparing full encodings, so the cell only needs enough hash to
//     keep false decodes rare (the probe position supplies the other
//     bits) and the ordinal to decode. Duplicate hits against the
//     sealed tier resolve unconditionally — a sealed entry can never be
//     re-keyed, so the claim path returns claimDup without even
//     loading a key.
//
// Mutation happens only at level boundaries (or single-threaded
// restore), strictly between the worker joins of one level and the
// goroutine spawns of the next, so readers never race writers and no
// cell or blob access needs atomics.
//
// Parent words: the engine stores parent *refs*, rewritten to their
// sealed ordinals before encoding, and delta-codes them (siblings
// share a parent, so the common delta is 0 — one byte). A distributed
// ShardStore's parent field is an intern-table index whose value
// depends on mesh arrival order; delta-coding those would make the
// arena *size* racy, so dist mode stores them as fixed 4-byte words
// (parentIsRef == false) and keeps every byte count deterministic.

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

const (
	// sealedRestartEvery is the delta-chain restart interval: ordinals
	// divisible by it store their full encoding.
	sealedRestartEvery = 16

	// Quotiented index cell layout: [rem:6 | ordinal+1:26]. The
	// remainder is the top sealedRemBits of the 32-bit probe hash (the
	// bits least correlated with the probe position, which uses the low
	// bits); ordinal+1 fits because the shard ordinal space is ordBits
	// wide and claim panics before exceeding it.
	sealedRemBits  = 6
	sealedRemShift = 32 - sealedRemBits
	sealedOrdMask  = 1<<(32-sealedRemBits) - 1

	// sealedIndexGrowAt mirrors the live index's growth schedule: the
	// table grows when count exceeds 3/4 capacity, quadrupling below
	// growDoubleAt cells and doubling past it. Keeping the schedules
	// identical means a checkpoint reader replaying inserts lands on
	// exactly the writer's capacities, so resident bytes survive a
	// resume unchanged.
	sealedInitialCells = 32
)

// sealedShard is one shard's sealed tier. All fields are read
// concurrently during a level and written only at barriers.
type sealedShard struct {
	count    uint32
	blob     []byte
	restarts []uint32
	index    []uint32

	// Delta-chain carry across seal batches: the previous batch's final
	// encoding and parent word, so a batch's first record (unless it
	// falls on a restart) chains off the entry physically before it.
	lastEnc []byte
	lastPW  uint64
}

// sealedGrow is the index growth schedule, shared with the checkpoint
// reader's replay.
func sealedGrow(cells int) int {
	if cells < growDoubleAt {
		return cells * 4
	}
	return cells * 2
}

// arenaEnsure grows blob capacity by ~25% steps (4 KiB floor) instead
// of append's doubling, bounding counted-vs-allocated slack; resident
// accounting tracks len, and a 2x doubling slack on a 20 MB arena
// would dwarf every other approximation in the budget.
func (ss *sealedShard) arenaEnsure(n int) {
	need := len(ss.blob) + n
	if need <= cap(ss.blob) {
		return
	}
	newCap := cap(ss.blob) + cap(ss.blob)/4
	if newCap < need {
		newCap = need
	}
	if newCap < 4096 {
		newCap = 4096
	}
	grown := make([]byte, len(ss.blob), newCap)
	copy(grown, ss.blob)
	ss.blob = grown
}

// appendEntry seals one entry: enc with parent word pw, in batch (key)
// order. parentIsRef selects the engine (varint delta) vs dist (fixed
// word) parent layout. Returns the entry's sealed ordinal.
func (ss *sealedShard) appendEntry(enc []byte, pw uint64, parentIsRef bool) uint32 {
	ord := ss.count
	restart := ord%sealedRestartEvery == 0
	if restart {
		ss.restarts = append(ss.restarts, uint32(len(ss.blob)))
	}
	ss.arenaEnsure(binary.MaxVarintLen64 + binary.MaxVarintLen32 + 4 + len(enc) + (len(enc)+7)/8)
	if parentIsRef {
		if restart {
			ss.blob = binary.AppendUvarint(ss.blob, pw)
		} else {
			ss.blob = binary.AppendVarint(ss.blob, int64(pw)-int64(ss.lastPW))
		}
	} else {
		ss.blob = binary.LittleEndian.AppendUint32(ss.blob, uint32(pw))
	}
	ss.blob = binary.AppendUvarint(ss.blob, uint64(len(enc)))
	if restart || len(enc) != len(ss.lastEnc) {
		ss.blob = append(ss.blob, enc...)
	} else {
		maskOff := len(ss.blob)
		maskLen := (len(enc) + 7) / 8
		for i := 0; i < maskLen; i++ {
			ss.blob = append(ss.blob, 0)
		}
		for i, b := range enc {
			if b != ss.lastEnc[i] {
				ss.blob[maskOff+i/8] |= 1 << (i % 8)
				ss.blob = append(ss.blob, b)
			}
		}
	}
	ss.lastEnc = append(ss.lastEnc[:0], enc...)
	ss.lastPW = pw
	ss.count = ord + 1
	return ord
}

// sealedDecoder walks arena records sequentially, maintaining the
// rolling encoding buffer and parent word the delta chain needs.
type sealedDecoder struct {
	ss          *sealedShard
	parentIsRef bool
	ord         uint32 // ordinal the next step() will produce
	off         int
	enc         []byte
	pw          uint64
}

// startAt positions the decoder on the restart block containing ord.
func (d *sealedDecoder) startAt(ss *sealedShard, ord uint32, parentIsRef bool) {
	d.ss = ss
	d.parentIsRef = parentIsRef
	d.ord = ord - ord%sealedRestartEvery
	d.off = int(ss.restarts[d.ord/sealedRestartEvery])
	d.enc = d.enc[:0]
	d.pw = 0
}

// step decodes the record at the decoder's position into its rolling
// state. It trusts arena invariants (callers decoding untrusted bytes
// use stepChecked); slice bounds remain the backstop.
func (d *sealedDecoder) step() {
	ss := d.ss
	restart := d.ord%sealedRestartEvery == 0
	if d.parentIsRef {
		if restart {
			pw, n := binary.Uvarint(ss.blob[d.off:])
			d.pw = pw
			d.off += n
		} else {
			delta, n := binary.Varint(ss.blob[d.off:])
			d.pw = uint64(int64(d.pw) + delta)
			d.off += n
		}
	} else {
		d.pw = uint64(binary.LittleEndian.Uint32(ss.blob[d.off:]))
		d.off += 4
	}
	encLen64, n := binary.Uvarint(ss.blob[d.off:])
	d.off += n
	encLen := int(encLen64)
	if restart || encLen != len(d.enc) {
		d.enc = append(d.enc[:0], ss.blob[d.off:d.off+encLen]...)
		d.off += encLen
	} else {
		maskLen := (encLen + 7) / 8
		mask := ss.blob[d.off : d.off+maskLen]
		d.off += maskLen
		for i := 0; i < encLen; i++ {
			if mask[i/8]&(1<<(i%8)) != 0 {
				d.enc[i] = ss.blob[d.off]
				d.off++
			}
		}
	}
	d.ord++
}

// errSealedCorrupt marks invalid arena bytes found while decoding an
// untrusted (checkpoint-loaded) arena.
var errSealedCorrupt = fmt.Errorf("invalid sealed-arena record")

// stepChecked is step with full bounds validation, for arenas read
// from a checkpoint file rather than built in-process.
func (d *sealedDecoder) stepChecked(maxEnc int) error {
	ss := d.ss
	restart := d.ord%sealedRestartEvery == 0
	if restart {
		ri := int(d.ord / sealedRestartEvery)
		if ri >= len(ss.restarts) || int(ss.restarts[ri]) != d.off {
			return errSealedCorrupt
		}
	}
	if d.parentIsRef {
		if restart {
			pw, n := binary.Uvarint(ss.blob[d.off:])
			if n <= 0 {
				return errSealedCorrupt
			}
			d.pw = pw
			d.off += n
		} else {
			delta, n := binary.Varint(ss.blob[d.off:])
			if n <= 0 {
				return errSealedCorrupt
			}
			d.pw = uint64(int64(d.pw) + delta)
			d.off += n
		}
	} else {
		if d.off+4 > len(ss.blob) {
			return errSealedCorrupt
		}
		d.pw = uint64(binary.LittleEndian.Uint32(ss.blob[d.off:]))
		d.off += 4
	}
	encLen64, n := binary.Uvarint(ss.blob[d.off:])
	if n <= 0 || encLen64 > uint64(maxEnc) {
		return errSealedCorrupt
	}
	d.off += n
	encLen := int(encLen64)
	if restart || encLen != len(d.enc) {
		if d.off+encLen > len(ss.blob) {
			return errSealedCorrupt
		}
		d.enc = append(d.enc[:0], ss.blob[d.off:d.off+encLen]...)
		d.off += encLen
	} else {
		maskLen := (encLen + 7) / 8
		if d.off+maskLen > len(ss.blob) {
			return errSealedCorrupt
		}
		mask := ss.blob[d.off : d.off+maskLen]
		d.off += maskLen
		for i := 0; i < encLen; i++ {
			if mask[i/8]&(1<<(i%8)) != 0 {
				if d.off >= len(ss.blob) {
					return errSealedCorrupt
				}
				d.enc[i] = ss.blob[d.off]
				d.off++
			}
		}
	}
	d.ord++
	return nil
}

// decodeAt random-accesses ordinal ord: O(sealedRestartEvery) steps
// from the preceding restart. The returned encoding aliases the
// decoder's rolling buffer.
func (d *sealedDecoder) decodeAt(ss *sealedShard, ord uint32, parentIsRef bool) (enc []byte, pw uint64) {
	d.startAt(ss, ord, parentIsRef)
	for d.ord <= ord {
		d.step()
	}
	return d.enc, d.pw
}

// find probes the quotiented index for enc (probe hash ph): a cell
// whose remainder matches is confirmed by decoding its entry and
// comparing full encodings, so collisions in (position, remainder)
// resolve exactly. Returns the sealed ordinal on a hit.
func (ss *sealedShard) find(ph uint32, enc []byte, d *sealedDecoder, parentIsRef bool) (uint32, bool) {
	cells := ss.index
	if len(cells) == 0 {
		return 0, false
	}
	mask := uint32(len(cells) - 1)
	rem := ph >> sealedRemShift
	for i := ph & mask; ; i = (i + 1) & mask {
		cell := cells[i]
		if cell == 0 {
			return 0, false
		}
		if cell>>sealedRemShift == rem {
			ord := cell&sealedOrdMask - 1
			got, _ := d.decodeAt(ss, ord, parentIsRef)
			if bytes.Equal(got, enc) {
				return ord, true
			}
		}
	}
}

// indexInsert inserts ordinal ord with probe hash ph. The caller
// guarantees capacity (see indexEnsure).
func (ss *sealedShard) indexInsert(ph uint32, ord uint32) {
	cells := ss.index
	mask := uint32(len(cells) - 1)
	i := ph & mask
	for cells[i] != 0 {
		i = (i + 1) & mask
	}
	cells[i] = ph>>sealedRemShift<<sealedRemShift | (ord + 1)
}

// indexNeedsGrow reports whether admitting one more entry would push
// the table past 3/4 load (or the table doesn't exist yet).
func (ss *sealedShard) indexNeedsGrow() bool {
	return len(ss.index) == 0 || uint64(ss.count+1)*4 > uint64(len(ss.index))*3
}

// indexGrow allocates the next-capacity table and repopulates it by a
// sequential decode sweep of the arena — cells hold only 6 remainder
// bits, not enough to rehash, but a linear decode re-derives every
// (hash, ordinal) pair at ~O(count) cost amortized over the growth
// schedule. Returns the resident bytes added (new cells) and freed
// (old cells) separately so the caller can record the transient peak
// while both tables are live.
func (ss *sealedShard) indexGrow(parentIsRef bool, d *sealedDecoder) (added, freed int64) {
	newLen := sealedInitialCells
	for uint64(ss.count+1)*4 > uint64(newLen)*3 {
		newLen = sealedGrow(newLen)
	}
	if newLen <= len(ss.index) {
		return 0, 0
	}
	freed = int64(len(ss.index) * 4)
	ss.index = make([]uint32, newLen)
	if ss.count > 0 {
		d.startAt(ss, 0, parentIsRef)
		for d.ord < ss.count {
			ord := d.ord
			d.step()
			h := hashBytes(d.enc)
			ss.indexInsert(uint32(h>>32), ord)
		}
	}
	return int64(newLen * 4), freed
}

// residentBytes is the tier's exact counted footprint: arena bytes in
// use, restart offsets, and index cells. Arena slack capacity (bounded
// at ~25% by arenaEnsure) is the one deliberate omission, documented
// with the Stats fields.
func (ss *sealedShard) residentBytes() int64 {
	return int64(len(ss.blob)) + int64(len(ss.restarts)*4) + int64(len(ss.index)*4)
}
