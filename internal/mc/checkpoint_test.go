package mc

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Depth:       7,
		ResultDepth: 6,
		Transitions: 1234,
		Fingerprint: 0xdeadbeefcafef00d,
		Frontier:    []State{"b", "", "c\x00d"},
		Visited: []VisitedEntry{
			{State: "", Parent: "", HasParent: false},
			{State: "b", Parent: "", HasParent: true},
			{State: "c\x00d", Parent: "b", HasParent: true},
		},
	}
}

func TestCheckpointCodecRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp")
	want := sampleCheckpoint()
	if err := WriteCheckpoint(path, want); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp")
	if err := WriteCheckpoint(path, sampleCheckpoint()); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCheckpoint(path); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("flip at byte %d: got %v, want ErrBadCheckpoint", i, err)
		}
	}
}

func TestCheckpointTruncationDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp")
	if err := WriteCheckpoint(path, sampleCheckpoint()); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, len(checkpointMagic), len(data) / 2, len(data) - 1} {
		if err := os.WriteFile(path, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadCheckpoint(path); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrBadCheckpoint", n, err)
		}
	}
}

func TestCheckpointVersionMismatch(t *testing.T) {
	payload := []byte(checkpointMagic)
	payload = binary.AppendUvarint(payload, 99)
	h := fnv.New64a()
	h.Write(payload)
	payload = binary.BigEndian.AppendUint64(payload, h.Sum64())
	path := filepath.Join(t.TempDir(), "cp")
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("version 99: got %v, want ErrBadCheckpoint", err)
	}
}

// TestCheckpointLegacyV1Load hand-builds a version-1 file — whose
// visited entries carry the claim key and depth fields the current
// format dropped — and proves the reader still loads it, discarding the
// two legacy fields.
func TestCheckpointLegacyV1Load(t *testing.T) {
	want := sampleCheckpoint()
	want.Fingerprint = 0 // v1 predates the fingerprint word
	payload := []byte(checkpointMagic)
	payload = binary.AppendUvarint(payload, checkpointLegacyVersion)
	payload = binary.AppendUvarint(payload, uint64(uint32(want.Depth)))
	payload = binary.AppendUvarint(payload, uint64(want.ResultDepth))
	payload = binary.AppendUvarint(payload, uint64(want.Transitions))
	str := func(s State) {
		payload = binary.AppendUvarint(payload, uint64(len(s)))
		payload = append(payload, s...)
	}
	payload = binary.AppendUvarint(payload, uint64(len(want.Frontier)))
	for _, s := range want.Frontier {
		str(s)
	}
	payload = binary.AppendUvarint(payload, uint64(len(want.Visited)))
	for i, e := range want.Visited {
		str(e.State)
		str(e.Parent)
		payload = binary.AppendUvarint(payload, uint64(i*3)) // legacy claim key
		payload = binary.AppendUvarint(payload, uint64(i))   // legacy depth
		flags := byte(0)
		if e.HasParent {
			flags = 1
		}
		payload = append(payload, flags)
	}
	h := fnv.New64a()
	h.Write(payload)
	payload = binary.BigEndian.AppendUint64(payload, h.Sum64())

	path := filepath.Join(t.TempDir(), "cp-v1")
	if err := os.WriteFile(path, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatalf("legacy v1 read: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("legacy v1 mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestCheckpointMissingFile(t *testing.T) {
	if _, err := ReadCheckpoint(filepath.Join(t.TempDir(), "absent")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("got %v, want os.ErrNotExist", err)
	}
}

func TestCheckpointAtomicNoTempLeft(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cp")
	if err := WriteCheckpoint(path, sampleCheckpoint()); err != nil {
		t.Fatalf("write: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "cp" {
		t.Fatalf("directory holds %d entries, want only the checkpoint", len(entries))
	}
}
