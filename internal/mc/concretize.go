package mc

// Decanonicalization: turning a counterexample found in the reduction
// quotient back into a concrete witness trace.
//
// A reduced search's BFS tree runs through canonical representatives, so
// the path tracePath reconstructs is a path of the quotient graph — its
// states need not be reachable concrete states, and its steps need not
// be concrete transitions. What the quotient does guarantee (that is
// what soundness means) is that some concrete reachable state maps to
// the canonical source of the violating transition and has a violating
// successor of its own. concretize finds one by oracle-semantics BFS:
// the result is a genuine trace of the concrete system, independently
// re-verified against the invariant, so a reduced FAILS verdict can
// never rest on the reduction alone. The concrete witness is shortest
// among paths to the chosen preimage but, unlike an unreduced search's
// counterexample, not necessarily globally shortest (the quotient's
// violation level orders by canonical depth, which fast-forwarding
// compresses).

import "fmt"

// concretize maps the canonical counterexample canonTrace (BFS path of
// canonical states plus the raw violating successor) to a concrete
// witness: a path of concrete states from an initial state, whose last
// transition violates trInv. Exploration uses the model's oracle
// successor semantics; the canonicalizer is only used to recognize
// preimages of the violating transition's canonical source.
func concretize(m Model, rm ReducibleModel, trInv TransitionInvariantBytes, canonTrace []State) ([]State, error) {
	if len(canonTrace) < 2 {
		return nil, fmt.Errorf("mc: cannot concretize a %d-state counterexample", len(canonTrace))
	}
	target := canonTrace[len(canonTrace)-2]
	can := rm.NewReducedExpander() // used only for Canonicalize
	var buf []byte
	canonOf := func(s State) State {
		buf = append(buf[:0], s...)
		can.Canonicalize(buf)
		return State(buf) // string conversion copies; buf stays reusable
	}

	type node struct {
		s      State
		parent int // queue index, -1 for initial states
	}
	var queue []node
	seen := make(map[State]struct{})
	for _, s := range m.Initial() {
		if _, dup := seen[s]; dup {
			continue
		}
		seen[s] = struct{}{}
		queue = append(queue, node{s: s, parent: -1})
	}
	for i := 0; i < len(queue); i++ {
		x := queue[i]
		succs := m.Successors(x.s)
		if canonOf(x.s) == target {
			for _, y := range succs {
				if !trInv([]byte(x.s), []byte(y)) {
					var rev []State
					for j := i; j >= 0; j = queue[j].parent {
						rev = append(rev, queue[j].s)
					}
					out := make([]State, 0, len(rev)+1)
					for k := len(rev) - 1; k >= 0; k-- {
						out = append(out, rev[k])
					}
					return append(out, y), nil
				}
			}
			// This preimage has no violating successor; keep searching —
			// soundness only promises that some preimage does.
		}
		for _, y := range succs {
			if _, dup := seen[y]; dup {
				continue
			}
			seen[y] = struct{}{}
			queue = append(queue, node{s: y, parent: i})
		}
	}
	return nil, fmt.Errorf("mc: reduced counterexample has no concrete witness — the reduction is unsound for this model; rerun with NoReduce (-no-reduce)")
}
