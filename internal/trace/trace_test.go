package trace

import (
	"strings"
	"testing"

	"ttastar/internal/guardian"
	"ttastar/internal/mc"
	"ttastar/internal/model"
)

func fullShiftCounterexample(t *testing.T, cfg model.Config) (*model.Model, []mc.State) {
	t.Helper()
	m, err := model.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mc.CheckTransitionInvariant(m, m.Property(), mc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatal("expected a counterexample")
	}
	return m, res.Counterexample
}

func TestRenderFullShiftTrace(t *testing.T) {
	m, cex := fullShiftCounterexample(t, model.Config{Authority: guardian.AuthorityFullShift})
	out := Render(m, cex)

	for _, phrase := range []string{
		"1) Initially, all nodes are in the freeze state.",
		"sends a cold start frame",
		"replays the previous cold start frame",
		"integrates on the frame and transitions into the passive state",
		"freezes due to a clique avoidance error",
	} {
		if !strings.Contains(out, phrase) {
			t.Errorf("trace missing %q:\n%s", phrase, out)
		}
	}
	// Steps are numbered 1..len(path).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(cex) {
		t.Errorf("rendered %d steps for a %d-state trace", len(lines), len(cex))
	}
}

func TestRenderCStateReplayTrace(t *testing.T) {
	m, cex := fullShiftCounterexample(t, model.Config{
		Authority:         guardian.AuthorityFullShift,
		NoColdStartReplay: true,
	})
	out := Render(m, cex)
	if !strings.Contains(out, "replays the previous C-state frame") {
		t.Errorf("trace does not show a C-state replay:\n%s", out)
	}
	if strings.Contains(out, "replays the previous cold start frame") {
		t.Errorf("trace replays a cold-start frame despite constraint:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	m, err := model.New(model.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := Render(m, nil); got != "(empty trace)" {
		t.Errorf("Render(nil) = %q", got)
	}
}

func TestRenderStates(t *testing.T) {
	m, cex := fullShiftCounterexample(t, model.Config{Authority: guardian.AuthorityFullShift})
	out := RenderStates(m, cex)
	if !strings.Contains(out, "state 1:") || !strings.Contains(out, "freeze") {
		t.Errorf("RenderStates output unexpected:\n%s", out)
	}
	if !strings.Contains(out, "buf0=") && !strings.Contains(out, "buf1=") {
		t.Errorf("RenderStates never shows a buffered frame:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(cex) {
		t.Errorf("RenderStates has %d lines for %d states", len(lines), len(cex))
	}
}

func TestRenderSilenceAndNoiseFaults(t *testing.T) {
	// Build a two-step path by hand where a coupler goes silent: initial →
	// all-init is fault-independent, so instead check the describe path via
	// a model with a silence fault possible. Rendering must not panic and
	// must mention nothing misleading for an unconstrained init step.
	m, err := model.New(model.Config{})
	if err != nil {
		t.Fatal(err)
	}
	init := m.Initial()[0]
	succs := m.Successors(init)
	out := Render(m, []mc.State{init, succs[0]})
	if !strings.HasPrefix(out, "1) Initially") {
		t.Errorf("unexpected rendering:\n%s", out)
	}
}
