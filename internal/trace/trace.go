// Package trace renders model-checker counterexamples in the numbered
// prose style of the paper's §5.2 traces ("1) Initially, all nodes are in
// the freeze state. …").
package trace

import (
	"fmt"
	"strings"

	"ttastar/internal/cstate"
	"ttastar/internal/mc"
	"ttastar/internal/model"
)

// Render formats a counterexample path of m as numbered steps.
func Render(m *model.Model, path []mc.State) string {
	if len(path) == 0 {
		return "(empty trace)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "1) Initially, all nodes are in the freeze state.\n")
	step := 2
	for i := 0; i+1 < len(path); i++ {
		info, ok := m.Explain(path[i], path[i+1])
		lines := describe(m, path[i], path[i+1], info, ok)
		if len(lines) == 0 {
			lines = []string{"One TDMA slot passes without observable change."}
		}
		fmt.Fprintf(&b, "%d) %s\n", step, strings.Join(lines, " "))
		step++
	}
	return b.String()
}

// RenderStates dumps the raw state variables of every state on the path —
// the detailed companion to Render.
func RenderStates(m *model.Model, path []mc.State) string {
	var b strings.Builder
	for i, enc := range path {
		s := m.Decode(enc)
		fmt.Fprintf(&b, "state %d:", i+1)
		for j, n := range s.Nodes {
			fmt.Fprintf(&b, "  %v=%v", cstate.NodeID(j+1), n.Phase)
			if n.Phase == model.PhaseListen {
				fmt.Fprintf(&b, "(t=%d,bb=%v)", n.Timeout, n.BigBang)
			}
			if n.Slot != 0 {
				fmt.Fprintf(&b, "(slot=%d,a=%d,f=%d)", n.Slot, n.Agreed, n.Failed)
			}
		}
		for c, cp := range s.Couplers {
			if cp.BufferedKind != model.FrameNone {
				fmt.Fprintf(&b, "  buf%d=%v/%d", c, cp.BufferedKind, cp.BufferedID)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func nodeName(i int) string { return "Node " + cstate.NodeID(i+1).String() }

func describe(m *model.Model, fromEnc, toEnc mc.State, info model.StepInfo, haveInfo bool) []string {
	from := m.Decode(fromEnc)
	to := m.Decode(toEnc)
	var lines []string

	// Transmissions during the slot.
	for i, n := range from.Nodes {
		if n.Slot != uint8(i+1) {
			continue
		}
		switch n.Phase {
		case model.PhaseColdStart:
			lines = append(lines, fmt.Sprintf("%s sends a cold start frame.", nodeName(i)))
		case model.PhaseActive:
			lines = append(lines, fmt.Sprintf("%s sends a C-state frame.", nodeName(i)))
		}
	}

	// Coupler faults.
	if haveInfo {
		for c, f := range info.Faults {
			switch f {
			case model.FaultSilence:
				lines = append(lines, fmt.Sprintf("The faulty star coupler %d turns channel %d silent.", c, c))
			case model.FaultBadFrame:
				lines = append(lines, fmt.Sprintf("The faulty star coupler %d places a bad frame on channel %d.", c, c))
			case model.FaultOutOfSlot:
				lines = append(lines, fmt.Sprintf("A faulty star coupler replays the previous %s frame from %s.",
					kindNoun(info.Channels[c].Kind), cstate.NodeID(info.Channels[c].ID)))
			}
		}
	}

	// Per-node visible changes, grouped where the paper groups them.
	var toInit, toListen []string
	for i := range from.Nodes {
		f, t := from.Nodes[i], to.Nodes[i]
		switch {
		case f.Phase == model.PhaseFreeze && t.Phase == model.PhaseInit:
			toInit = append(toInit, nodeName(i))
		case f.Phase == model.PhaseInit && t.Phase == model.PhaseListen:
			toListen = append(toListen, nodeName(i))
		case f.Phase == model.PhaseListen && t.Phase == model.PhaseListen:
			if !f.BigBang && t.BigBang {
				lines = append(lines, fmt.Sprintf("%s ignores the frame due to the big bang requirement.", nodeName(i)))
			} else if t.Timeout == 0 && f.Timeout > 0 {
				lines = append(lines, fmt.Sprintf("The listen timeout counter of %s decreases to zero.", strings.ToLower(nodeName(i)[:1])+nodeName(i)[1:]))
			}
		case f.Phase == model.PhaseListen && t.Phase == model.PhaseColdStart:
			lines = append(lines, fmt.Sprintf("%s transitions into the cold start state.", nodeName(i)))
		case f.Phase == model.PhaseListen && t.Phase == model.PhasePassive:
			lines = append(lines, fmt.Sprintf("%s integrates on the frame and transitions into the passive state.", nodeName(i)))
		case f.Phase == model.PhaseColdStart && t.Phase == model.PhaseActive:
			lines = append(lines, fmt.Sprintf("%s passes the clique test and enters the active state.", nodeName(i)))
		case f.Phase == model.PhaseColdStart && t.Phase == model.PhaseListen:
			lines = append(lines, fmt.Sprintf("%s fails the clique avoidance test and returns to the listen state.", nodeName(i)))
		case f.Phase == model.PhasePassive && t.Phase == model.PhaseActive:
			lines = append(lines, fmt.Sprintf("%s enters the active state and starts transmitting.", nodeName(i)))
		case f.Phase.Integrated() && t.Phase == model.PhaseFreeze:
			lines = append(lines, fmt.Sprintf("%s freezes due to a clique avoidance error.", nodeName(i)))
		case t.Phase == model.PhaseFreeze && f.Phase != model.PhaseFreeze:
			lines = append(lines, fmt.Sprintf("%s transitions into the freeze state.", nodeName(i)))
		}

		// Judgement notes for real frames counted as failed.
		if f.Phase.Integrated() && t.Phase.Integrated() && t.Failed > f.Failed && haveInfo && realFrame(info) {
			lines = append(lines, fmt.Sprintf("%s considers the frame a faulty frame.", nodeName(i)))
		}
	}
	if len(toInit) > 0 {
		lines = append(lines, groupSentence(toInit, "the init state"))
	}
	if len(toListen) > 0 {
		lines = append(lines, groupSentence(toListen, "the listen state"))
	}
	return lines
}

func groupSentence(names []string, dest string) string {
	if len(names) == len([]string{}) {
		return ""
	}
	if len(names) == 1 {
		return fmt.Sprintf("%s makes a transition into %s.", names[0], dest)
	}
	return fmt.Sprintf("%s transition into %s.", strings.Join(names, ", "), dest)
}

func realFrame(info model.StepInfo) bool {
	for _, c := range info.Channels {
		switch c.Kind {
		case model.FrameColdStart, model.FrameCState, model.FrameOther:
			return true
		}
	}
	return false
}

func kindNoun(k model.FrameKind) string {
	switch k {
	case model.FrameColdStart:
		return "cold start"
	case model.FrameCState:
		return "C-state"
	case model.FrameOther:
		return "data"
	default:
		return k.String()
	}
}
