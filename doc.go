// Package ttastar is a from-scratch Go reproduction of "Fault Tolerance
// Tradeoffs in Moving from Decentralized to Centralized Embedded Systems"
// (Morris, Kroening, Koopman — DSN 2004): a TTP/C protocol engine and TTA
// cluster simulator, an explicit-state model checker running the paper's
// formal model of star-coupler faults, and the §6 buffer-size analysis.
//
// The implementation lives under internal/; the binaries under cmd/ and
// the runnable examples under examples/ are the public surface. The
// benchmarks in bench_test.go regenerate every experiment (E1–E11 in
// DESIGN.md).
package ttastar
