#!/usr/bin/env bash
# Runs the benchmark suite and emits a machine-readable JSON report via
# cmd/benchjson, with shape assertions so a silently-vanishing benchmark
# or a missing -benchmem metric fails the run. If BENCH_BASELINE points
# at a previous report, also emits a regression comparison against it.
#
# Usage:
#   scripts/bench.sh                 # full suite -> BENCH_pr10.json
#   BENCH_FILTER='E1|Throughput' BENCHTIME=1x scripts/bench.sh  # CI smoke
#   BENCH_BASELINE=BENCH_pr9.json BENCH_FAIL_ABOVE=2.0 scripts/bench.sh
#
# Environment:
#   BENCH_FILTER      -bench regexp        (default: all top-level benches)
#   BENCHTIME         -benchtime value     (default: 1x — each bench once)
#   BENCH_OUT         output JSON path     (default: BENCH_pr10.json)
#   BENCH_COUNT       -count value         (default: 1)
#   BENCH_BASELINE    old JSON to compare against (default: none)
#   BENCH_FAIL_ABOVE  fail if any new/old ratio exceeds this (default: 0 = report only)
#   BENCH_COMPARE_OUT comparison report path (default: BENCH_compare.txt)
set -euo pipefail

cd "$(dirname "$0")/.."

BENCH_FILTER=${BENCH_FILTER:-.}
BENCHTIME=${BENCHTIME:-1x}
BENCH_OUT=${BENCH_OUT:-BENCH_pr10.json}
BENCH_COUNT=${BENCH_COUNT:-1}
BENCH_BASELINE=${BENCH_BASELINE:-}
BENCH_FAIL_ABOVE=${BENCH_FAIL_ABOVE:-0}
BENCH_COMPARE_OUT=${BENCH_COMPARE_OUT:-BENCH_compare.txt}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# The full sweep includes the 13.2M-state 6-node scaling point; with the
# flat visited set it is a routine run, so no -short gating remains.
go test -run '^$' -bench "$BENCH_FILTER" -benchtime "$BENCHTIME" \
  -count "$BENCH_COUNT" -benchmem -timeout 60m . | tee "$raw"

require_args=(-require-metrics 'ns/op,B/op,allocs/op')
# The two acceptance-tracked benches must be present whenever the filter
# admits them.
for name in ModelCheckerThroughput E1VerificationMatrix; do
  if [[ "$BENCH_FILTER" == "." ]] || grep -qE "$BENCH_FILTER" <<<"$name"; then
    require_args+=(-require "$name")
  fi
done

go run ./cmd/benchjson "${require_args[@]}" -o "$BENCH_OUT" < "$raw"
echo "wrote $BENCH_OUT ($(grep -c '"name"' "$BENCH_OUT") benchmarks)"

if [[ -n "$BENCH_BASELINE" ]]; then
  go run ./cmd/benchjson -compare -fail-above "$BENCH_FAIL_ABOVE" \
    -o "$BENCH_COMPARE_OUT" "$BENCH_BASELINE" "$BENCH_OUT"
  cat "$BENCH_COMPARE_OUT"
  echo "wrote $BENCH_COMPARE_OUT (vs $BENCH_BASELINE)"
fi
