#!/usr/bin/env bash
# Runs the benchmark suite and emits a machine-readable JSON report via
# cmd/benchjson, with shape assertions so a silently-vanishing benchmark
# or a missing -benchmem metric fails the run.
#
# Usage:
#   scripts/bench.sh                 # full suite -> BENCH_pr4.json
#   BENCH_FILTER='E1|Throughput' BENCHTIME=1x scripts/bench.sh  # CI smoke
#
# Environment:
#   BENCH_FILTER  -bench regexp            (default: all top-level benches)
#   BENCHTIME     -benchtime value         (default: 1x — each bench once)
#   BENCH_OUT     output JSON path         (default: BENCH_pr4.json)
#   BENCH_COUNT   -count value             (default: 1)
set -euo pipefail

cd "$(dirname "$0")/.."

BENCH_FILTER=${BENCH_FILTER:-.}
BENCHTIME=${BENCHTIME:-1x}
BENCH_OUT=${BENCH_OUT:-BENCH_pr4.json}
BENCH_COUNT=${BENCH_COUNT:-1}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# -short skips the 13.2M-state 6-node scaling point; drop it deliberately
# by exporting BENCH_LONG=1 when you want the full sweep.
short_flag="-short"
if [[ "${BENCH_LONG:-}" == "1" ]]; then
  short_flag=""
fi

go test -run '^$' -bench "$BENCH_FILTER" -benchtime "$BENCHTIME" \
  -count "$BENCH_COUNT" -benchmem $short_flag -timeout 60m . | tee "$raw"

require_args=(-require-metrics 'ns/op,B/op,allocs/op')
# The two acceptance-tracked benches must be present whenever the filter
# admits them.
for name in ModelCheckerThroughput E1VerificationMatrix; do
  if [[ "$BENCH_FILTER" == "." ]] || grep -qE "$BENCH_FILTER" <<<"$name"; then
    require_args+=(-require "$name")
  fi
done

go run ./cmd/benchjson "${require_args[@]}" -o "$BENCH_OUT" < "$raw"
echo "wrote $BENCH_OUT ($(grep -c '"name"' "$BENCH_OUT") benchmarks)"
